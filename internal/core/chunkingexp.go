package core

import (
	"fmt"

	"cloudsync/internal/chunker"
	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
	"cloudsync/internal/delta"
	"cloudsync/internal/metrics"
	"cloudsync/internal/parallel"
)

// ChunkingCell is one row of the chunking-discipline ablation: the
// upload volume a chunk-addressed store needs as a file evolves
// through insert-heavy edits.
type ChunkingCell struct {
	Scheme string
	// Uploaded is the total new-chunk (or delta) volume across all
	// versions after the first.
	Uploaded int64
	// FirstVersion is the volume of the initial upload (equal across
	// schemes up to framing).
	FirstVersion int64
}

// ChunkingAblation quantifies the discussion the paper cites ([19],
// [39]) but sidesteps: how much better content-defined chunking and
// rolling-hash delta sync handle *insertions* than the "simple and
// natural" fixed-size blocking used for the Fig. 5 analysis. Each
// version inserts editSize random bytes at a pseudo-random offset; the
// upload cost of a version is the volume of chunks the store has not
// seen yet (or, for rsync, the encoded delta).
func ChunkingAblation(versions int, fileSize int64, editSize int) []ChunkingCell {
	return runChunkingAblation(versions, fileSize, editSize, false)
}

// ChunkingAblationNC is the ablation with one extra row: normalized
// (two-mask) content-defined chunking, which trades a slightly less
// content-driven boundary choice for a tighter chunk-size distribution.
// It is an opt-in extra — it consumes content seeds, so it never runs
// as part of the pinned experiment set.
func ChunkingAblationNC(versions int, fileSize int64, editSize int) []ChunkingCell {
	return runChunkingAblation(versions, fileSize, editSize, true)
}

// chunkScheme is one chunk-store discipline under ablation. Chunking
// runs through content.CDCFingerprints / chunker so repeated
// fingerprinting of the same blob is a cache hit.
type chunkScheme struct {
	name   string
	chunks func(b *content.Blob) []chunker.Block
}

func runChunkingAblation(versions int, fileSize int64, editSize int, normalized bool) []ChunkingCell {
	if versions < 2 || fileSize <= 0 || fileSize > content.MaterializeLimit || editSize <= 0 {
		panic(fmt.Sprintf("core: ChunkingAblation(%d, %d, %d) out of range", versions, fileSize, editSize))
	}
	// Build the version chain once.
	chain := make([][]byte, versions)
	chain[0] = content.Random(fileSize, nextSeed()).Bytes()
	state := uint64(0x9E3779B97F4A7C15)
	next := func(mod int64) int64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int64(state % uint64(mod))
	}
	for i := 1; i < versions; i++ {
		prev := chain[i-1]
		off := next(int64(len(prev)) + 1)
		ins := content.Random(int64(editSize), nextSeed()).Bytes()
		v := make([]byte, 0, len(prev)+editSize)
		v = append(v, prev[:off]...)
		v = append(v, ins...)
		v = append(v, prev[off:]...)
		chain[i] = v
	}
	blobs := make([]*content.Blob, versions)
	for i, data := range chain {
		blobs[i] = content.FromBytes(data)
	}

	const fixedBlock = 8 << 10
	schemes := []chunkScheme{
		{"fixed 8 KB blocks", func(b *content.Blob) []chunker.Block {
			return chunker.Fixed(b.Bytes(), fixedBlock)
		}},
		{"content-defined (2/8/32 KB)", func(b *content.Blob) []chunker.Block {
			return content.CDCFingerprints(b, 2<<10, 8<<10, 32<<10)
		}},
	}
	if normalized {
		schemes = append(schemes, chunkScheme{
			"content-defined normalized (2/8/32 KB)", func(b *content.Blob) []chunker.Block {
				return chunker.ContentDefinedNC(b.Bytes(), 2<<10, 8<<10, 32<<10)
			}})
	}

	// The chain is read-only from here on; the scheme evaluations (each
	// with its own seen-set) and the rsync pass run on the worker pool.
	evals := make([]func() ChunkingCell, 0, len(schemes)+1)
	for _, s := range schemes {
		s := s
		evals = append(evals, func() ChunkingCell {
			seen := make(map[dedup.Fingerprint]struct{})
			cell := ChunkingCell{Scheme: s.name}
			for i, b := range blobs {
				var uploaded int64
				for _, blk := range s.chunks(b) {
					if _, dup := seen[blk.Sum]; !dup {
						seen[blk.Sum] = struct{}{}
						uploaded += int64(blk.Size)
					}
				}
				if i == 0 {
					cell.FirstVersion = uploaded
				} else {
					cell.Uploaded += uploaded
				}
			}
			return cell
		})
	}
	evals = append(evals, func() ChunkingCell {
		// rsync-style delta against the previous version (requires the
		// server to hold a mutable basis rather than a chunk store).
		rs := ChunkingCell{Scheme: "rsync delta (8 KB)"}
		rs.FirstVersion = int64(len(chain[0]))
		for i := 1; i < versions; i++ {
			sig := delta.Sign(chain[i-1], fixedBlock)
			d := delta.Compute(sig, chain[i])
			rs.Uploaded += int64(d.WireSize() + sig.WireSize())
		}
		return rs
	})
	return parallel.Map(evals, func(_ int, eval func() ChunkingCell) ChunkingCell {
		return eval()
	})
}

// RenderChunking formats the ablation.
func RenderChunking(cells []ChunkingCell, versions int, fileSize int64, editSize int) string {
	tb := metrics.Table{Header: []string{"Scheme", "First upload", "Updates total", "Per edit"}}
	for _, c := range cells {
		per := c.Uploaded / int64(versions-1)
		tb.AddRow(c.Scheme, metrics.HumanBytes(c.FirstVersion),
			metrics.HumanBytes(c.Uploaded), metrics.HumanBytes(per))
	}
	return fmt.Sprintf(
		"Chunking-discipline ablation: %d versions of a %s file, %s inserted per edit\n%s",
		versions, metrics.HumanBytes(fileSize), metrics.HumanBytes(int64(editSize)), tb.String())
}
