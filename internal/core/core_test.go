package core

import (
	"strings"
	"testing"

	"cloudsync/internal/client"
	"cloudsync/internal/service"
)

func TestTUE(t *testing.T) {
	if got := TUE(150, 100); got != 1.5 {
		t.Fatalf("TUE = %v", got)
	}
	for _, c := range []struct{ tr, sz int64 }{{-1, 10}, {10, 0}, {10, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TUE(%d, %d) did not panic", c.tr, c.sz)
				}
			}()
			TUE(c.tr, c.sz)
		}()
	}
}

func pcCells(cells []Cell) map[service.Name]map[float64]Cell {
	out := map[service.Name]map[float64]Cell{}
	for _, c := range cells {
		if c.Access != client.PC {
			continue
		}
		if out[c.Service] == nil {
			out[c.Service] = map[float64]Cell{}
		}
		out[c.Service][c.Param] = c
	}
	return out
}

func TestExperiment1Shapes(t *testing.T) {
	cells := Experiment1(QuickSizes)
	if len(cells) != 6*3*len(QuickSizes) {
		t.Fatalf("cells = %d", len(cells))
	}
	pc := pcCells(cells)
	for _, n := range service.All() {
		oneB := pc[n][1].TUE
		oneMB := pc[n][1<<20].TUE
		// A 1-byte file costs kilobytes (TUE in the thousands); a 1 MB
		// file approaches TUE 1 — the core Fig. 3 shape.
		if oneB < 1000 {
			t.Errorf("%v: TUE(1B) = %.0f, want ≫ 1000", n, oneB)
		}
		if oneMB > 1.6 {
			t.Errorf("%v: TUE(1MB) = %.2f, want ≤ 1.6", n, oneMB)
		}
		if oneB <= oneMB {
			t.Errorf("%v: TUE not decreasing with size", n)
		}
	}
}

func TestExperiment1BatchMatchesTable7(t *testing.T) {
	results := Experiment1Batch()
	byKey := map[service.Name]map[client.AccessMethod]BatchCreationResult{}
	for _, r := range results {
		if byKey[r.Service] == nil {
			byKey[r.Service] = map[client.AccessMethod]BatchCreationResult{}
		}
		byKey[r.Service][r.Access] = r
	}
	// Table 7's finding: Dropbox and Ubuntu One PC clients batch; the
	// other four do not.
	for _, n := range service.All() {
		r := byKey[n][client.PC]
		wantBDS := n == service.Dropbox || n == service.UbuntuOne
		if r.BDSDetected != wantBDS {
			t.Errorf("%v PC: BDS detected = %v (TUE %.1f), want %v", n, r.BDSDetected, r.TUE, wantBDS)
		}
	}
	// Magnitudes: Dropbox PC ≈ 120 KB; Google Drive PC ≈ 1.1 MB.
	if r := byKey[service.Dropbox][client.PC]; r.Traffic > 400<<10 {
		t.Errorf("Dropbox PC batch traffic = %d, want ≈ 120–300 KB", r.Traffic)
	}
	if r := byKey[service.GoogleDrive][client.PC]; r.Traffic < 500<<10 {
		t.Errorf("Google Drive PC batch traffic = %d, want ≈ 1 MB", r.Traffic)
	}
}

func TestExperiment2DeletionNegligible(t *testing.T) {
	for _, c := range Experiment2([]int64{1 << 10, 10 << 20}) {
		if c.Traffic > 100<<10 {
			t.Errorf("%v/%v size %v: deletion traffic %d ≥ 100 KB",
				c.Service, c.Access, c.Param, c.Traffic)
		}
	}
}

func TestExperiment3SyncGranularity(t *testing.T) {
	sizes := []int64{10 << 10, 1 << 20}
	cells := Experiment3(sizes)
	idx := map[service.Name]map[client.AccessMethod]map[float64]Cell{}
	for _, c := range cells {
		if idx[c.Service] == nil {
			idx[c.Service] = map[client.AccessMethod]map[float64]Cell{}
		}
		if idx[c.Service][c.Access] == nil {
			idx[c.Service][c.Access] = map[float64]Cell{}
		}
		idx[c.Service][c.Access][c.Param] = c
	}
	// Fig. 4(a): Dropbox PC traffic stays flat as the file grows (its
	// ≈10 KB chunks dwarf neither overhead nor payload); SugarSync's
	// coarser chunks grow to one chunk and then plateau. Both stay far
	// below the full file.
	{
		small := idx[service.Dropbox][client.PC][float64(10<<10)].Traffic
		big := idx[service.Dropbox][client.PC][float64(1<<20)].Traffic
		if big > 3*small {
			t.Errorf("Dropbox PC: IDS traffic grew %d → %d with file size", small, big)
		}
	}
	if got := idx[service.SugarSync][client.PC][float64(1<<20)].Traffic; got > 1<<19 {
		t.Errorf("SugarSync PC: modify traffic %d should stay below half the file (IDS)", got)
	}
	for _, n := range []service.Name{service.GoogleDrive, service.OneDrive, service.Box, service.UbuntuOne} {
		small := idx[n][client.PC][float64(10<<10)].Traffic
		big := idx[n][client.PC][float64(1<<20)].Traffic
		if big < 10*small {
			t.Errorf("%v PC: full-file traffic should scale with size (%d → %d)", n, small, big)
		}
	}
	// Fig. 4(b,c): every web and mobile client is full-file.
	for _, n := range service.All() {
		for _, a := range []client.AccessMethod{client.Web, client.Mobile} {
			big := idx[n][a][float64(1<<20)].Traffic
			if big < 1<<20 {
				t.Errorf("%v/%v: modify traffic %d < file size; web/mobile must be full-file", n, a, big)
			}
		}
	}
	// Dropbox PC's absolute magnitude: ≈ 50 KB regardless of size.
	if got := idx[service.Dropbox][client.PC][float64(1<<20)].Traffic; got < 20<<10 || got > 120<<10 {
		t.Errorf("Dropbox PC modify traffic = %d, want ≈ 50 KB", got)
	}
}

func TestExperiment4MatchesTable8(t *testing.T) {
	const size = 10 << 20
	cells := Experiment4(size)
	idx := map[service.Name]map[client.AccessMethod]CompressionCell{}
	for _, c := range cells {
		if idx[c.Service] == nil {
			idx[c.Service] = map[client.AccessMethod]CompressionCell{}
		}
		idx[c.Service][c.Access] = c
	}
	// Upload compression: only Dropbox and Ubuntu One, only PC and
	// mobile.
	for _, n := range service.All() {
		for _, a := range service.AccessMethods() {
			c := idx[n][a]
			want := (n == service.Dropbox || n == service.UbuntuOne) && a != client.Web
			if c.Detected != want {
				t.Errorf("%v/%v: compression detected = %v (UP %d), want %v",
					n, a, c.Detected, c.UpBytes, want)
			}
		}
	}
	// Magnitude check against Table 8 (PC column): Dropbox ≈ 6.1 MB up,
	// 5.5 MB down; Google Drive ≈ 11.3 MB up.
	mb := func(v int64) float64 { return float64(v) / (1 << 20) }
	if up := mb(idx[service.Dropbox][client.PC].UpBytes); up < 5.0 || up > 7.5 {
		t.Errorf("Dropbox PC UP = %.1f MB, want ≈ 6.1", up)
	}
	if dn := mb(idx[service.Dropbox][client.PC].DnBytes); dn < 4.5 || dn > 7.0 {
		t.Errorf("Dropbox PC DN = %.1f MB, want ≈ 5.5", dn)
	}
	if up := mb(idx[service.GoogleDrive][client.PC].UpBytes); up < 10.0 || up > 12.5 {
		t.Errorf("Google Drive PC UP = %.1f MB, want ≈ 11.3", up)
	}
	// Mobile compression is weaker than PC (Dropbox: 8.1 vs 6.1).
	if pc, mob := idx[service.Dropbox][client.PC].UpBytes, idx[service.Dropbox][client.Mobile].UpBytes; mob <= pc {
		t.Errorf("Dropbox mobile UP (%d) should exceed PC UP (%d)", mob, pc)
	}
	// Ubuntu One mobile downloads are uncompressed (10.6 MB).
	if dn := mb(idx[service.UbuntuOne][client.Mobile].DnBytes); dn < 9.5 {
		t.Errorf("Ubuntu One mobile DN = %.1f MB, want ≈ raw size", dn)
	}
}

func TestTextIdealRatio(t *testing.T) {
	// The paper's WinZip reference: 10 MB of text → ≈ 4.5 MB.
	if r := TextIdealRatio(4 << 20); r < 0.35 || r > 0.65 {
		t.Fatalf("ideal text ratio = %.3f, want ≈ 0.45–0.55", r)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	cells := Experiment1([]int64{1, 1 << 20})
	for name, s := range map[string]string{
		"table6": RenderTable6(cells, []int64{1, 1 << 20}),
		"fig3":   RenderFig3(cells),
	} {
		if !strings.Contains(s, "Dropbox") || !strings.Contains(s, "Ubuntu One") {
			t.Errorf("%s rendering incomplete:\n%s", name, s)
		}
		if len(strings.Split(s, "\n")) < 5 {
			t.Errorf("%s rendering too short:\n%s", name, s)
		}
	}
}
