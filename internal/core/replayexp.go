package core

import (
	"fmt"
	"time"

	"cloudsync/internal/chunker"
	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/metrics"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

// ReplayResult aggregates one service's replay of the trace.
type ReplayResult struct {
	Service string
	Files   int
	// UpdateBytes is the total data-update volume (creations plus
	// modification edits) — TUE's denominator.
	UpdateBytes int64
	Traffic     int64
	TUE         float64
	// FullTraceGB extrapolates the traffic to the full 222,632-file
	// population; CostUSD prices it at the paper's Amazon S3 rate
	// ($0.05/GB), the arithmetic behind its "$260,000 every day"
	// estimate. All sync traffic is priced, a deliberate
	// simplification.
	FullTraceGB float64
	CostUSD     float64
}

// s3DollarsPerGB is the Amazon S3 outbound price the paper's § 1 cost
// estimate uses.
const s3DollarsPerGB = 0.05

// replayBlob picks content for a trace record: compressible records up
// to the exact-compression threshold become text (so compression-aware
// services benefit), everything else is incompressible random data.
// Duplicate records share a generator seed, so content identity — and
// therefore deduplication — carries over from the trace. idOffset
// shifts the seed without changing size or compressibility: the scale
// replay gives each cloned user population its own content identities.
func replayBlob(r trace.Record, idOffset int64) *content.Blob {
	if r.EffectivelyCompressible() && r.OriginalSize <= 4<<20 {
		return content.Text(r.OriginalSize, r.ContentID+idOffset)
	}
	return content.Random(r.OriginalSize, r.ContentID+idOffset)
}

// scheduleRecord schedules one trace record onto a setup's clock: the
// creation at the record's trace timestamp and, for modified records,
// the modification events (1 % of the file, capped at 64 KB, per edit)
// spread between creation and last-modification time. It returns the
// record's contribution to the data-update size — TUE's denominator.
// All content seeds derive from the record's ContentID (plus the scale
// replay's clone offset), so scheduling draws no global seeds and is
// safe to run for independent setups in parallel.
func scheduleRecord(s *service.Setup, name string, r trace.Record, idOffset int64) int64 {
	update := r.OriginalSize
	blob := replayBlob(r, idOffset)
	at := r.Created.Sub(trace.Epoch)
	s.Clock.Post(at, func() {
		if err := s.FS.Create(name, blob); err != nil {
			panic(fmt.Sprintf("core: replay create: %v", err))
		}
	})
	if r.Mods == 0 {
		return update
	}
	window := r.Modified.Sub(r.Created)
	if window <= 0 {
		window = time.Hour
	}
	edit := r.OriginalSize / 100
	if edit < 1 {
		edit = 1
	}
	if edit > 64<<10 {
		edit = 64 << 10
	}
	mods := r.Mods
	if mods > 8 {
		mods = 8 // bound per-file event count; the tail adds little
	}
	for m := 1; m <= mods; m++ {
		off := (r.OriginalSize / int64(mods+1)) * int64(m)
		if off >= r.OriginalSize {
			off = r.OriginalSize - 1
		}
		update += edit
		editLen := edit
		s.Clock.Post(at+window*time.Duration(m)/time.Duration(mods+1), func() {
			f, ok := s.FS.File(name)
			if !ok || f.Size() == 0 {
				return
			}
			end := off + editLen
			if end > f.Size() {
				end = f.Size()
			}
			if err := s.FS.Write(name, f.Blob().Mutate(off),
				[]chunker.Range{{Off: off, Len: end - off}}); err != nil {
				panic(fmt.Sprintf("core: replay edit: %v", err))
			}
		})
	}
	return update
}

// TraceReplay replays a trace through the real sync engine under one
// service profile: every record is created at its trace timestamp, and
// records modified during the collection window receive their
// modification events (1 % of the file, capped at 64 KB, per edit)
// spread between creation and last-modification time. The replay runs
// a single account on the PC client from Minnesota.
func TraceReplay(n service.Name, recs []trace.Record, fullScaleFactor float64) ReplayResult {
	s := newSetup(n, client.PC, service.Options{})
	var update int64
	for i, r := range recs {
		update += scheduleRecord(s, fmt.Sprintf("u/%s/f%06d", r.User, i), r, 0)
	}
	s.Clock.Run()

	traffic := s.Capture.TotalBytes()
	fullGB := float64(traffic) * fullScaleFactor / (1 << 30)
	return ReplayResult{
		Service:     n.String(),
		Files:       len(recs),
		UpdateBytes: update,
		Traffic:     traffic,
		TUE:         TUE(traffic, update),
		FullTraceGB: fullGB,
		CostUSD:     fullGB * s3DollarsPerGB,
	}
}

// TraceReplayAll replays the trace under the six PC clients and the
// reference design. Each service's replay is an independent simulation
// over the (read-only) record slice, so the seven replays run on the
// worker pool; content identity comes from the records' ContentIDs, so
// no seeds are drawn and the results are order-independent.
func TraceReplayAll(recs []trace.Record, fullScaleFactor float64) []ReplayResult {
	services := append(service.All(), service.Reference)
	return parallel.Map(services, func(_ int, n service.Name) ReplayResult {
		return TraceReplay(n, recs, fullScaleFactor)
	})
}

// RenderReplay formats the replay comparison.
func RenderReplay(results []ReplayResult) string {
	tb := metrics.Table{Header: []string{"Service", "Files", "Updates", "Sync traffic", "TUE", "Full-trace est.", "S3 cost"}}
	for _, r := range results {
		tb.AddRow(r.Service,
			fmt.Sprintf("%d", r.Files),
			metrics.HumanBytes(r.UpdateBytes),
			metrics.HumanBytes(r.Traffic),
			fmtTUE(r.TUE),
			fmt.Sprintf("%.1f GB", r.FullTraceGB),
			fmt.Sprintf("$%.2f", r.CostUSD))
	}
	return "Trace replay: the § 3.1 workload under each service (PC client, MN)\n" +
		tb.String() +
		"(full-trace estimate scales traffic to the 222,632-file population;\n" +
		" cost prices it at the paper's $0.05/GB Amazon S3 rate)\n"
}
