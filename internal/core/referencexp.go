package core

import (
	"fmt"

	"cloudsync/internal/client"

	"cloudsync/internal/content"
	"cloudsync/internal/metrics"
	"cloudsync/internal/service"
)

// ReferenceCell compares the reference design (every provider
// recommendation of the paper combined) against the measured services
// on one workload.
type ReferenceCell struct {
	Workload  string
	Reference float64 // TUE of the reference design
	Best      float64 // best commercial TUE
	BestName  string
	Worst     float64 // worst commercial TUE
	WorstName string
}

// referenceWorkload drives one scenario on a fresh setup and reports
// (traffic, data update size).
type referenceWorkload struct {
	name string
	run  func(s *service.Setup) (int64, int64)
}

func referenceWorkloads() []referenceWorkload {
	return []referenceWorkload{
		{"create 1 MB file", func(s *service.Setup) (int64, int64) {
			mark := s.Capture.Mark()
			if err := s.FS.Create("f", content.Random(1<<20, nextSeed())); err != nil {
				panic(err)
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			return up + down, 1 << 20
		}},
		{"create 1 MB text file", func(s *service.Setup) (int64, int64) {
			mark := s.Capture.Mark()
			if err := s.FS.Create("f", content.Text(1<<20, nextSeed())); err != nil {
				panic(err)
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			return up + down, 1 << 20
		}},
		{"100 × 1 KB batch", func(s *service.Setup) (int64, int64) {
			mark := s.Capture.Mark()
			for i := 0; i < 100; i++ {
				if err := s.FS.Create(fmt.Sprintf("b/f%03d", i), content.Random(1<<10, nextSeed())); err != nil {
					panic(err)
				}
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			return up + down, 100 << 10
		}},
		{"modify 1 B of 1 MB", func(s *service.Setup) (int64, int64) {
			if err := s.FS.Create("f", content.Random(1<<20, nextSeed())); err != nil {
				panic(err)
			}
			s.Clock.Run()
			mark := s.Capture.Mark()
			if err := s.FS.ModifyByte("f", 1<<19); err != nil {
				panic(err)
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			// Reference the containing chunk, as the paper's IDS
			// discussion does: the fairest "should" is one chunk.
			return up + down, int64(8 << 10)
		}},
		{"re-upload duplicate 1 MB", func(s *service.Setup) (int64, int64) {
			blob := content.Random(1<<20, nextSeed())
			if err := s.FS.Create("orig", blob); err != nil {
				panic(err)
			}
			s.Clock.Run()
			mark := s.Capture.Mark()
			if err := s.FS.Create("copy", content.Random(1<<20, blob.Seed())); err != nil {
				panic(err)
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			return up + down, 1 << 20
		}},
		{"append 1 KB/s → 1 MB", func(s *service.Setup) (int64, int64) {
			return appendWorkload(s, 1, AppendTotal), AppendTotal
		}},
		{"append 8 KB/8 s → 1 MB", func(s *service.Setup) (int64, int64) {
			return appendWorkload(s, 8, AppendTotal), AppendTotal
		}},
	}
}

// ReferenceComparison runs every workload on the reference design and
// on the six commercial PC clients, reporting the reference TUE
// against the best and worst commercial results.
func ReferenceComparison() []ReferenceCell {
	var out []ReferenceCell
	for _, w := range referenceWorkloads() {
		cell := ReferenceCell{Workload: w.name}

		s := service.NewReferenceSetup(service.Options{})
		traffic, update := w.run(s)
		cell.Reference = TUE(traffic, update)

		first := true
		for _, n := range service.All() {
			s := service.NewSetup(n, client.PC, service.Options{})
			traffic, update := w.run(s)
			tue := TUE(traffic, update)
			if first || tue < cell.Best {
				cell.Best, cell.BestName = tue, n.String()
			}
			if first || tue > cell.Worst {
				cell.Worst, cell.WorstName = tue, n.String()
			}
			first = false
		}
		out = append(out, cell)
	}
	return out
}

// RenderReference formats the comparison.
func RenderReference(cells []ReferenceCell) string {
	tb := metrics.Table{Header: []string{"Workload", "Reference TUE", "Best service", "Worst service"}}
	for _, c := range cells {
		tb.AddRow(c.Workload, fmtTUE(c.Reference),
			fmt.Sprintf("%s (%s)", fmtTUE(c.Best), c.BestName),
			fmt.Sprintf("%s (%s)", fmtTUE(c.Worst), c.WorstName))
	}
	return "Reference design (all paper recommendations) vs. the six services (PC clients)\n" + tb.String()
}

// ReferenceASDBound verifies the ASD claim end to end on the reference
// design: the worst-case appending TUE across the cadence sweep.
func ReferenceASDBound(xs []float64) float64 {
	worst := 0.0
	for _, x := range xs {
		s := service.NewReferenceSetup(service.Options{})
		tue := TUE(appendWorkload(s, x, AppendTotal), AppendTotal)
		if tue > worst {
			worst = tue
		}
	}
	return worst
}
