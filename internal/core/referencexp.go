package core

import (
	"fmt"

	"cloudsync/internal/client"

	"cloudsync/internal/content"
	"cloudsync/internal/metrics"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
)

// ReferenceCell compares the reference design (every provider
// recommendation of the paper combined) against the measured services
// on one workload.
type ReferenceCell struct {
	Workload  string
	Reference float64 // TUE of the reference design
	Best      float64 // best commercial TUE
	BestName  string
	Worst     float64 // worst commercial TUE
	WorstName string
}

// referenceWorkload drives one scenario on a fresh setup and reports
// (traffic, data update size). seeds is how many content seeds one run
// draws; each run gets a pre-reserved sequence of exactly that length
// so runs can execute on the worker pool deterministically.
type referenceWorkload struct {
	name  string
	seeds int64
	run   func(s *service.Setup, seeds *seedSeq) (int64, int64)
}

func referenceWorkloads() []referenceWorkload {
	return []referenceWorkload{
		{"create 1 MB file", 1, func(s *service.Setup, seeds *seedSeq) (int64, int64) {
			mark := s.Capture.Mark()
			if err := s.FS.Create("f", content.Random(1<<20, seeds.Next())); err != nil {
				panic(err)
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			return up + down, 1 << 20
		}},
		{"create 1 MB text file", 1, func(s *service.Setup, seeds *seedSeq) (int64, int64) {
			mark := s.Capture.Mark()
			if err := s.FS.Create("f", content.Text(1<<20, seeds.Next())); err != nil {
				panic(err)
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			return up + down, 1 << 20
		}},
		{"100 × 1 KB batch", 100, func(s *service.Setup, seeds *seedSeq) (int64, int64) {
			mark := s.Capture.Mark()
			for i := 0; i < 100; i++ {
				if err := s.FS.Create(fmt.Sprintf("b/f%03d", i), content.Random(1<<10, seeds.Next())); err != nil {
					panic(err)
				}
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			return up + down, 100 << 10
		}},
		{"modify 1 B of 1 MB", 1, func(s *service.Setup, seeds *seedSeq) (int64, int64) {
			if err := s.FS.Create("f", content.Random(1<<20, seeds.Next())); err != nil {
				panic(err)
			}
			s.Clock.Run()
			mark := s.Capture.Mark()
			if err := s.FS.ModifyByte("f", 1<<19); err != nil {
				panic(err)
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			// Reference the containing chunk, as the paper's IDS
			// discussion does: the fairest "should" is one chunk.
			return up + down, int64(8 << 10)
		}},
		{"re-upload duplicate 1 MB", 1, func(s *service.Setup, seeds *seedSeq) (int64, int64) {
			blob := content.Random(1<<20, seeds.Next())
			if err := s.FS.Create("orig", blob); err != nil {
				panic(err)
			}
			s.Clock.Run()
			mark := s.Capture.Mark()
			if err := s.FS.Create("copy", content.Random(1<<20, blob.Seed())); err != nil {
				panic(err)
			}
			s.Clock.Run()
			up, down, _ := s.Capture.Since(mark)
			return up + down, 1 << 20
		}},
		{"append 1 KB/s → 1 MB", 1, func(s *service.Setup, seeds *seedSeq) (int64, int64) {
			return appendWorkload(s, 1, AppendTotal, seeds.Next()), AppendTotal
		}},
		{"append 8 KB/8 s → 1 MB", 1, func(s *service.Setup, seeds *seedSeq) (int64, int64) {
			return appendWorkload(s, 8, AppendTotal, seeds.Next()), AppendTotal
		}},
	}
}

// ReferenceComparison runs every workload on the reference design and
// on the six commercial PC clients, reporting the reference TUE
// against the best and worst commercial results. All workload × setup
// runs (7 × 7) execute on the worker pool; the best/worst aggregation
// over services happens afterwards, in input order.
func ReferenceComparison() []ReferenceCell {
	workloads := referenceWorkloads()
	services := service.All()
	// Task i*(1+len(services)) is workload i on the reference design;
	// the following len(services) tasks are the commercial clients.
	type task struct {
		w         referenceWorkload
		reference bool
		n         service.Name
		seeds     *seedSeq
	}
	var tasks []task
	for _, w := range workloads {
		tasks = append(tasks, task{w: w, reference: true, seeds: reserveSeeds(w.seeds)})
		for _, n := range services {
			tasks = append(tasks, task{w: w, n: n, seeds: reserveSeeds(w.seeds)})
		}
	}
	tues := parallel.Map(tasks, func(_ int, t task) float64 {
		var s *service.Setup
		if t.reference {
			s = newReferenceSetup(service.Options{})
		} else {
			s = newSetup(t.n, client.PC, service.Options{})
		}
		traffic, update := t.w.run(s, t.seeds)
		return TUE(traffic, update)
	})

	out := make([]ReferenceCell, len(workloads))
	stride := 1 + len(services)
	for i, w := range workloads {
		cell := ReferenceCell{Workload: w.name, Reference: tues[i*stride]}
		for j, n := range services {
			tue := tues[i*stride+1+j]
			if j == 0 || tue < cell.Best {
				cell.Best, cell.BestName = tue, n.String()
			}
			if j == 0 || tue > cell.Worst {
				cell.Worst, cell.WorstName = tue, n.String()
			}
		}
		out[i] = cell
	}
	return out
}

// RenderReference formats the comparison.
func RenderReference(cells []ReferenceCell) string {
	tb := metrics.Table{Header: []string{"Workload", "Reference TUE", "Best service", "Worst service"}}
	for _, c := range cells {
		tb.AddRow(c.Workload, fmtTUE(c.Reference),
			fmt.Sprintf("%s (%s)", fmtTUE(c.Best), c.BestName),
			fmt.Sprintf("%s (%s)", fmtTUE(c.Worst), c.WorstName))
	}
	return "Reference design (all paper recommendations) vs. the six services (PC clients)\n" + tb.String()
}

// ReferenceASDBound verifies the ASD claim end to end on the reference
// design: the worst-case appending TUE across the cadence sweep.
func ReferenceASDBound(xs []float64) float64 {
	seeds := make([]int64, len(xs))
	for i := range seeds {
		seeds[i] = nextSeed()
	}
	tues := parallel.Map(xs, func(i int, x float64) float64 {
		s := newReferenceSetup(service.Options{})
		return TUE(appendWorkload(s, x, AppendTotal, seeds[i]), AppendTotal)
	})
	worst := 0.0
	for _, tue := range tues {
		if tue > worst {
			worst = tue
		}
	}
	return worst
}
