package core

import (
	"testing"
	"time"

	"cloudsync/internal/client"

	"cloudsync/internal/dedup"
	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

func tueMap(cells []Cell) map[service.Name]map[float64]float64 {
	out := map[service.Name]map[float64]float64{}
	for _, c := range cells {
		if out[c.Service] == nil {
			out[c.Service] = map[float64]float64{}
		}
		out[c.Service][c.Param] = c.TUE
	}
	return out
}

func TestExperiment6Fig6Shapes(t *testing.T) {
	cells := Experiment6(service.All(), []float64{2, 5, 11, 20})
	m := tueMap(cells)

	// Deferred services batch below their deferment: TUE ≈ 1.
	if got := m[service.GoogleDrive][2]; got > 2 {
		t.Errorf("Google Drive TUE(X=2) = %.1f, want ≈ 1 (deferment 4.2s)", got)
	}
	if got := m[service.OneDrive][5]; got > 2 {
		t.Errorf("OneDrive TUE(X=5) = %.1f, want ≈ 1 (deferment 10.5s)", got)
	}
	if got := m[service.SugarSync][5]; got > 2 {
		t.Errorf("SugarSync TUE(X=5) = %.1f, want ≈ 1 (deferment 6s)", got)
	}
	// Past the deferment, the traffic overuse problem appears.
	if got := m[service.GoogleDrive][5]; got < 40 {
		t.Errorf("Google Drive TUE(X=5) = %.1f, want ≫ 1 past the deferment", got)
	}
	if got := m[service.OneDrive][11]; got < 25 || got > 80 {
		t.Errorf("OneDrive TUE(X=11) = %.1f, want ≈ 51", got)
	}
	// Full-file services without deferment: heavy overuse at X=2,
	// decreasing as X grows.
	for _, n := range []service.Name{service.Box, service.UbuntuOne} {
		fast, slow := m[n][2], m[n][20]
		if fast < 25 {
			t.Errorf("%v TUE(X=2) = %.1f, want heavy overuse", n, fast)
		}
		if slow >= fast {
			t.Errorf("%v: TUE should fall as X grows (%.1f → %.1f)", n, fast, slow)
		}
	}
	// IDS keeps Dropbox an order of magnitude below the full-file
	// services at fast cadence.
	if db, box := m[service.Dropbox][2], m[service.Box][2]; db >= box/2 {
		t.Errorf("Dropbox TUE(X=2) = %.1f should be well below Box %.1f", db, box)
	}
	// Magnitude bands for the maxima the paper reports (§ 6.1:
	// 260/51/144/75/32/33; our Google Drive spike is lower — see
	// EXPERIMENTS.md).
	if got := m[service.UbuntuOne][2]; got < 60 || got > 260 {
		t.Errorf("Ubuntu One TUE(X=2) = %.1f, want ≈ 144-band", got)
	}
	if got := m[service.Box][2]; got < 35 || got > 160 {
		t.Errorf("Box TUE(X=2) = %.1f, want ≈ 75-band", got)
	}
	if got := m[service.Dropbox][2]; got < 10 || got > 70 {
		t.Errorf("Dropbox TUE(X=2) = %.1f, want ≈ 32-band", got)
	}
}

func TestInferDeferments(t *testing.T) {
	want := map[service.Name]struct {
		t        time.Duration
		deferred bool
	}{
		service.GoogleDrive: {4200 * time.Millisecond, true},
		service.OneDrive:    {10500 * time.Millisecond, true},
		service.SugarSync:   {6 * time.Second, true},
		service.Box:         {0, false},
		service.UbuntuOne:   {0, false},
	}
	for n, w := range want {
		got, ok := InferDeferment(n)
		if ok != w.deferred {
			t.Errorf("%v: deferment detected = %v, want %v", n, ok, w.deferred)
			continue
		}
		if !w.deferred {
			continue
		}
		if diff := got - w.t; diff < -700*time.Millisecond || diff > 700*time.Millisecond {
			t.Errorf("%v: inferred deferment %v, want ≈ %v", n, got, w.t)
		}
	}
}

func TestASDEvaluationBeatsFixedDefer(t *testing.T) {
	// Past Google Drive's 4.2 s deferment the native policy overuses
	// traffic; ASD keeps TUE near 1 (§ 6.1's headline claim).
	cells := ASDEvaluation(service.GoogleDrive, []float64{6, 10})
	byPolicy := map[string]map[float64]float64{}
	for _, c := range cells {
		if byPolicy[c.Policy] == nil {
			byPolicy[c.Policy] = map[float64]float64{}
		}
		byPolicy[c.Policy][c.X] = c.TUE
	}
	for _, x := range []float64{6, 10} {
		native, asd := byPolicy["native"][x], byPolicy["asd"][x]
		if native < 20 {
			t.Errorf("native TUE(X=%g) = %.1f, want overuse", x, native)
		}
		if asd > 3 {
			t.Errorf("ASD TUE(X=%g) = %.1f, want ≈ 1", x, asd)
		}
		if uds := byPolicy["uds"][x]; uds > 12 {
			t.Errorf("UDS TUE(X=%g) = %.1f, want modest (byte-counter batches)", x, uds)
		}
	}
}

func TestExperiment7LocationEffect(t *testing.T) {
	cells := Experiment7([]service.Name{service.Box, service.Dropbox}, []float64{1, 2})
	byKey := map[service.Name]map[string]map[float64]float64{}
	for _, c := range cells {
		if byKey[c.Service] == nil {
			byKey[c.Service] = map[string]map[float64]float64{}
		}
		if byKey[c.Service][c.Location] == nil {
			byKey[c.Service][c.Location] = map[float64]float64{}
		}
		byKey[c.Service][c.Location][c.X] = c.TUE
	}
	// Fig. 7: the Beijing vantage point (slow, distant) yields smaller
	// TUE than Minnesota at fast cadence.
	for _, n := range []service.Name{service.Box, service.Dropbox} {
		mn, bj := byKey[n]["MN"][1], byKey[n]["BJ"][1]
		if bj >= mn {
			t.Errorf("%v: TUE@BJ (%.1f) should be below TUE@MN (%.1f)", n, bj, mn)
		}
	}
}

func TestFig8aBandwidth(t *testing.T) {
	cells := Fig8a([]int64{1_600_000, 20_000_000})
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	slow, fast := cells[0].TUE, cells[1].TUE
	if slow >= fast {
		t.Fatalf("TUE should rise with bandwidth: 1.6 Mbps %.1f vs 20 Mbps %.1f", slow, fast)
	}
}

func TestFig8bLatency(t *testing.T) {
	cells := Fig8b([]time.Duration{40 * time.Millisecond, time.Second})
	low, high := cells[0].TUE, cells[1].TUE
	if high >= low {
		t.Fatalf("TUE should fall with latency: 40ms %.1f vs 1s %.1f", low, high)
	}
	if low/high < 2 {
		t.Fatalf("latency effect too weak: %.1f vs %.1f", low, high)
	}
}

func TestFig8cHardware(t *testing.T) {
	cells := Fig8c([]float64{1, 2})
	byMachine := map[string]map[float64]float64{}
	for _, c := range cells {
		if byMachine[c.Machine] == nil {
			byMachine[c.Machine] = map[float64]float64{}
		}
		byMachine[c.Machine][c.X] = c.TUE
	}
	// Fig. 8(c): slower hardware incurs less sync traffic.
	if m2, m1 := byMachine["M2"][1], byMachine["M1"][1]; m2 >= m1 {
		t.Fatalf("M2 TUE (%.1f) should be below M1 (%.1f)", m2, m1)
	}
	if m3, m2 := byMachine["M3"][1], byMachine["M2"][1]; m3 <= m2 {
		t.Fatalf("M3 TUE (%.1f) should be above M2 (%.1f)", m3, m2)
	}
}

func TestAlgorithm1FindsDropboxBlockSize(t *testing.T) {
	bs, ok := Algorithm1(service.Dropbox, client.PC)
	if !ok {
		t.Fatal("Algorithm 1 found no block dedup for Dropbox")
	}
	if bs != 4<<20 {
		t.Fatalf("inferred block size = %d, want 4 MB", bs)
	}
}

func TestAlgorithm1RejectsNonDedupServices(t *testing.T) {
	for _, n := range []service.Name{service.GoogleDrive, service.UbuntuOne} {
		if bs, ok := Algorithm1(n, client.PC); ok {
			t.Errorf("%v: Algorithm 1 claims block dedup at %d", n, bs)
		}
	}
}

func TestExperiment5MatchesTable9(t *testing.T) {
	rows := Experiment5()
	want := map[service.Name][2]string{
		service.GoogleDrive: {"No", "No"},
		service.OneDrive:    {"No", "No"},
		service.Dropbox:     {"4 MB", "No"},
		service.Box:         {"No", "No"},
		service.UbuntuOne:   {"Full file", "Full file"},
		service.SugarSync:   {"No", "No"},
	}
	for _, r := range rows {
		w := want[r.Service]
		if r.SameUser != w[0] || r.CrossUser != w[1] {
			t.Errorf("%v: inferred (%q, %q), want (%q, %q)",
				r.Service, r.SameUser, r.CrossUser, w[0], w[1])
		}
	}
}

func TestFig5TrivialSuperiority(t *testing.T) {
	recs := trace.Generate(trace.GenConfig{Seed: 2, Scale: 0.05})
	points := Fig5(recs)
	if len(points) != 9 {
		t.Fatalf("points = %d, want full-file + 8 block sizes", len(points))
	}
	full := points[0].Ratio
	for _, p := range points[1:] {
		if p.Ratio < full {
			t.Errorf("block %d ratio %.3f below full-file %.3f", p.BlockSize, p.Ratio, full)
		}
		if p.Ratio > full*1.2 {
			t.Errorf("block %d ratio %.3f not 'trivially superior' to %.3f", p.BlockSize, p.Ratio, full)
		}
	}
}

func TestMidLayerAblation(t *testing.T) {
	rows := MidLayerAblation(1<<20, 20)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]MidLayerResult{}
	for _, r := range rows {
		byName[r.Layer] = r
	}
	full := byName["full-file"]
	trans := byName["get-put-delete"]
	chunk := byName["chunk-objects"]
	if trans.InternalBytes() <= full.InternalBytes() {
		t.Errorf("transform internal bytes (%d) should exceed full-file (%d)",
			trans.InternalBytes(), full.InternalBytes())
	}
	if chunk.InternalBytes() >= full.InternalBytes()/4 {
		t.Errorf("chunk-object internal bytes (%d) should be far below full-file (%d)",
			chunk.InternalBytes(), full.InternalBytes())
	}
	if chunk.Puts <= full.Puts {
		t.Errorf("chunk-object PUT count (%d) should exceed full-file (%d) — that is its cost",
			chunk.Puts, full.Puts)
	}
}

func TestCompressDedupAblation(t *testing.T) {
	recs := trace.Generate(trace.GenConfig{Seed: 3, Scale: 0.02})
	rows := CompressDedupAblation(recs, 4<<20)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(compOn bool, g dedup.Granularity) AblationCell {
		for _, r := range rows {
			if r.Compression == compOn && r.Dedup == g {
				return r
			}
		}
		t.Fatalf("missing combo (%v, %v)", compOn, g)
		return AblationCell{}
	}
	// Each technique helps on its own.
	if get(true, dedup.None).Traffic >= get(false, dedup.None).Traffic {
		t.Error("compression did not reduce traffic")
	}
	if get(false, dedup.FullFile).Traffic >= get(false, dedup.None).Traffic {
		t.Error("full-file dedup did not reduce traffic")
	}
	// The paper's conclusion: with compression on, full-file dedup
	// captures nearly all of block dedup's traffic savings…
	ff, blk := get(true, dedup.FullFile).Traffic, get(true, dedup.Block).Traffic
	if blk > ff {
		t.Errorf("block dedup traffic (%d) should not exceed full-file (%d)", blk, ff)
	}
	if float64(ff-blk)/float64(ff) > 0.10 {
		t.Errorf("block dedup saves %.1f%% over full-file; paper calls the edge trivial",
			100*float64(ff-blk)/float64(ff))
	}
	// …while only block dedup forces server-side decompression.
	if get(true, dedup.Block).DecompressBytes == 0 {
		t.Error("block dedup with compression should require decompression work")
	}
	for _, r := range rows {
		if !(r.Compression && r.Dedup == dedup.Block) && r.DecompressBytes != 0 {
			t.Errorf("combo (%v, %v) reports decompression work", r.Compression, r.Dedup)
		}
	}
}

func TestRenderFrequentOutputs(t *testing.T) {
	cells := Experiment6([]service.Name{service.GoogleDrive}, []float64{2, 5})
	if s := RenderFig6(cells, []service.Name{service.GoogleDrive}); len(s) < 50 {
		t.Errorf("fig6 render too short: %q", s)
	}
	pol := ASDEvaluation(service.GoogleDrive, []float64{6})
	if s := RenderPolicies(pol); len(s) < 40 {
		t.Errorf("policy render too short: %q", s)
	}
	net := Fig8a([]int64{1_600_000})
	if s := RenderFig8ab(net, "bandwidth"); len(s) < 40 {
		t.Errorf("fig8 render too short: %q", s)
	}
}
