package core

import (
	"strings"
	"testing"

	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

func TestTraceReplayAll(t *testing.T) {
	recs := trace.Generate(trace.GenConfig{Seed: 5, Scale: 0.01})
	results := TraceReplayAll(recs, 100)
	if len(results) != 7 {
		t.Fatalf("results = %d, want six services + reference", len(results))
	}
	byName := map[string]ReplayResult{}
	for _, r := range results {
		if r.Files != len(recs) {
			t.Errorf("%s replayed %d files, want %d", r.Service, r.Files, len(recs))
		}
		if r.TUE <= 0 || r.Traffic <= 0 || r.CostUSD <= 0 {
			t.Errorf("%s: degenerate result %+v", r.Service, r)
		}
		byName[r.Service] = r
	}
	ref := byName["Reference"]
	for _, n := range service.All() {
		r := byName[n.String()]
		// Update volume is identical across services (same workload).
		if r.UpdateBytes != ref.UpdateBytes {
			t.Errorf("%s update bytes %d != reference %d", r.Service, r.UpdateBytes, ref.UpdateBytes)
		}
		// The reference design must beat every commercial service on
		// the macro workload.
		if ref.TUE >= r.TUE {
			t.Errorf("reference TUE %.3f not below %s's %.3f", ref.TUE, r.Service, r.TUE)
		}
	}
	// Compression + dedup + IDS should put the reference meaningfully
	// below 1 on this mixed corpus.
	if ref.TUE > 0.95 {
		t.Errorf("reference replay TUE = %.3f, want < 0.95", ref.TUE)
	}
	// Full-file services re-upload whole files on every modification:
	// several× the update volume. IDS keeps Dropbox near 1.
	if g := byName["Google Drive"]; g.TUE < 2.5 || g.TUE > 9 {
		t.Errorf("Google Drive replay TUE = %.3f, want ≈ 3–8 (full-file resync)", g.TUE)
	}
	if d := byName["Dropbox"]; d.TUE > 2 {
		t.Errorf("Dropbox replay TUE = %.3f, want ≈ 1.2 (IDS)", d.TUE)
	}
}

func TestRenderReplay(t *testing.T) {
	recs := trace.Generate(trace.GenConfig{Seed: 6, Scale: 0.002})
	s := RenderReplay([]ReplayResult{TraceReplay(service.Box, recs, 500)})
	if !strings.Contains(s, "Box") || !strings.Contains(s, "S3 cost") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}
