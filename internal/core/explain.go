package core

import (
	"fmt"

	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/invariant"
	"cloudsync/internal/metrics"
	"cloudsync/internal/netem"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
)

// This file is the "explainable TUE" experiment: instead of reporting a
// cell's sync traffic as one opaque number, it decomposes every wire
// byte into the attribution ledger's cause taxonomy (metadata, payload,
// dedup probes, delta literals/copy references, resume, retransmit,
// framing) — the paper-style answer to *why* a cell's TUE is what it
// is. Each cell's decomposition is checked on the spot: the causes must
// sum to the cell's wire traffic exactly, via the invariant harness's
// ledger-balance check.

// ExplainCell is one experiment measurement with its traffic decomposed
// by cause. Causes always sum exactly to Traffic.
type ExplainCell struct {
	Service service.Name
	Access  client.AccessMethod
	// Param is the section's swept parameter: file size in bytes for the
	// creation and modification sections, exchange-loss probability for
	// the faults section.
	Param   float64
	Causes  ledger.Snapshot
	Traffic int64
	TUE     float64
}

// explainOp builds a setup, runs the optional prelude to quiescence
// (traffic the cell does not account), then attaches a private ledger,
// runs op, and returns the decomposition of exactly the op's traffic.
// Panics if the causes do not sum to the measured wire bytes — the
// decomposition is only worth printing if it is provably complete.
func explainOp(n service.Name, a client.AccessMethod, opts service.Options,
	prelude, op func(*service.Setup)) (ledger.Snapshot, int64, *service.Setup) {
	s := newSetup(n, a, opts)
	if prelude != nil {
		prelude(s)
		s.Clock.Run()
	}
	led := &ledger.Ledger{}
	s.Capture.SetLedger(led) // replaces the global hook: this cell only
	mark := s.Capture.Mark()
	op(s)
	s.Clock.Run()
	up, down, _ := s.Capture.Since(mark)
	snap := led.Snapshot()
	if vs := invariant.CheckLedger(up+down, snap); len(vs) != 0 {
		panic(fmt.Sprintf("core: explain cell %s/%s: %v", n, a, vs))
	}
	return snap, up + down, s
}

// ExplainCreation decomposes Experiment 1 (compressed file creation,
// PC clients): where do the bytes of a fresh upload go, per service and
// size?
func ExplainCreation(sizes []int64) []ExplainCell {
	type task struct {
		n    service.Name
		size int64
		seed int64
	}
	seeds := make([]int64, len(sizes))
	for i := range sizes {
		seeds[i] = nextSeed()
	}
	var tasks []task
	for _, n := range service.All() {
		for i, size := range sizes {
			tasks = append(tasks, task{n: n, size: size, seed: seeds[i]})
		}
	}
	return parallel.Map(tasks, func(_ int, t task) ExplainCell {
		blob := content.Random(t.size, t.seed)
		snap, traffic, _ := explainOp(t.n, client.PC, service.Options{}, nil,
			func(s *service.Setup) {
				if err := s.FS.Create("file.bin", blob); err != nil {
					panic(err)
				}
			})
		return ExplainCell{
			Service: t.n, Access: client.PC, Param: float64(t.size),
			Causes: snap, Traffic: traffic, TUE: TUE(traffic, t.size),
		}
	})
}

// ExplainModification decomposes Experiment 3 (one-byte modification,
// PC clients): the delta-sync services should show the update almost
// entirely as delta copy references and metadata, while full-file
// services re-ship the payload.
func ExplainModification(sizes []int64) []ExplainCell {
	type task struct {
		n    service.Name
		size int64
		seed int64
	}
	seeds := make([]int64, len(sizes))
	for i := range sizes {
		seeds[i] = nextSeed()
	}
	var tasks []task
	for _, n := range service.All() {
		for i, size := range sizes {
			tasks = append(tasks, task{n: n, size: size, seed: seeds[i]})
		}
	}
	return parallel.Map(tasks, func(_ int, t task) ExplainCell {
		blob := content.Random(t.size, t.seed)
		snap, traffic, _ := explainOp(t.n, client.PC, service.Options{},
			func(s *service.Setup) {
				if err := s.FS.Create("target.bin", blob); err != nil {
					panic(err)
				}
			},
			func(s *service.Setup) {
				if err := s.FS.ModifyByte("target.bin", t.size/2); err != nil {
					panic(err)
				}
			})
		return ExplainCell{
			Service: t.n, Access: client.PC, Param: float64(t.size),
			Causes: snap, Traffic: traffic, TUE: TUE(traffic, 1), // one byte changed
		}
	})
}

// explainFaultFiles and explainFaultFileSize scale the fault section's
// workload down from the full fault sweep: attribution needs enough
// traffic for retransmits to show up, not a statistically smooth TUE.
const (
	explainFaultFiles    = 6
	explainFaultFileSize = int64(64 << 10)
)

// ExplainFaults decomposes the fault sweep (Dropbox PC over Beijing):
// as exchange loss grows, the retransmit cause takes over a growing
// share of an unchanged payload.
func ExplainFaults(lossProbs []float64) []ExplainCell {
	type task struct {
		prob float64
		link netem.Link
		seed int64
	}
	// One shared content-seed base: identical payloads across loss rates
	// isolate the fault schedule as the only difference between rows.
	baseSeed := reserveSeeds(explainFaultFiles).Next()
	var tasks []task
	for i, p := range lossProbs {
		link := netem.Beijing()
		if p > 0 {
			link.Faults = &netem.FaultProfile{
				Seed:     uint64(0xE0B000 + i),
				LossProb: p,
			}
		}
		tasks = append(tasks, task{prob: p, link: link, seed: baseSeed})
	}
	return parallel.Map(tasks, func(_ int, t task) ExplainCell {
		snap, traffic, _ := explainOp(service.Dropbox, client.PC,
			service.Options{Link: t.link}, nil,
			func(s *service.Setup) {
				for i := 0; i < explainFaultFiles; i++ {
					name := fmt.Sprintf("fault-%02d.bin", i)
					blob := content.Random(explainFaultFileSize, t.seed+int64(i))
					if err := s.FS.Create(name, blob); err != nil {
						panic(err)
					}
					s.Clock.Run()
				}
			})
		return ExplainCell{
			Service: service.Dropbox, Access: client.PC, Param: t.prob,
			Causes: snap, Traffic: traffic,
			TUE: TUE(traffic, explainFaultFiles*explainFaultFileSize),
		}
	})
}

// ExplainResult bundles the explain experiment's three sections.
type ExplainResult struct {
	Creation     []ExplainCell
	Modification []ExplainCell
	Faults       []ExplainCell
}

// ExplainLossProbs is the fault section's loss sweep (quick and full
// runs share it: the section is small enough already).
var ExplainLossProbs = []float64{0, 0.05, 0.20}

// ExplainAll runs every explain section. quick reduces the size sweep
// the same way the other experiments' quick mode does.
func ExplainAll(quick bool) ExplainResult {
	sizes := TableSizes
	if quick {
		sizes = QuickSizes
	}
	return ExplainResult{
		Creation:     ExplainCreation(sizes),
		Modification: ExplainModification(sizes),
		Faults:       ExplainFaults(ExplainLossProbs),
	}
}

// explainTable renders one section's cells: one row per cell, one
// column per cause, plus the exact total and the TUE.
func explainTable(cells []ExplainCell, param func(ExplainCell) string, paramHeader string) string {
	header := []string{"Service", paramHeader}
	for _, c := range ledger.Causes() {
		header = append(header, c.String())
	}
	header = append(header, "total", "TUE")
	tb := metrics.Table{Header: header}
	for _, cell := range cells {
		row := []string{cell.Service.String(), param(cell)}
		for _, c := range ledger.Causes() {
			if n := cell.Causes.Get(c); n > 0 {
				row = append(row, metrics.HumanBytes(n))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, metrics.HumanBytes(cell.Traffic), fmtTUE(cell.TUE))
		tb.AddRow(row...)
	}
	return tb.String()
}

// RenderExplain formats the decomposition sections as tables in the
// style of the paper's Table 6/Fig. 4, with causes as columns. Every
// row's causes sum exactly to its total column (asserted at measurement
// time).
func RenderExplain(res ExplainResult) string {
	size := func(c ExplainCell) string { return metrics.HumanBytes(int64(c.Param)) }
	loss := func(c ExplainCell) string { return fmt.Sprintf("%.0f%%", c.Param*100) }
	return "Explainable TUE: per-cause decomposition of sync traffic (PC clients)\n" +
		"(a) compressed file creation\n" + explainTable(res.Creation, size, "Size") +
		"(b) one-byte modification of a synced file\n" + explainTable(res.Modification, size, "Size") +
		"(c) file creations under exchange loss (Dropbox, Beijing)\n" + explainTable(res.Faults, loss, "Loss")
}
