package core

import (
	"fmt"

	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/metrics"
	"cloudsync/internal/netem"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
)

// FaultCell is one measurement of the fault-injection sweep: the TUE of
// the file-creation workload on one link at one exchange-loss rate,
// plus the faults the link actually injected.
type FaultCell struct {
	Location string
	LossProb float64
	TUE      float64
	Faults   netem.FaultStats
}

// FaultLossProbs is the default loss sweep: the clean baseline plus
// loss rates from light wireless degradation to a badly congested path.
var FaultLossProbs = []float64{0, 0.01, 0.02, 0.05, 0.10}

// QuickFaultLossProbs is a reduced sweep.
var QuickFaultLossProbs = []float64{0, 0.02, 0.10}

// faultFiles and faultFileSize define the sweep's workload: a fixed
// sequence of distinct fresh files, each synced to quiescence before
// the next is created. Unlike the appending workload, the session count
// cannot shift with link timing (no Condition-1 batching feedback), so
// any traffic difference between cells of one location is purely the
// injected faults.
const (
	faultFiles    = 24
	faultFileSize = int64(128 << 10)
)

// faultWorkload creates faultFiles distinct files on the setup, one
// sync session at a time, and returns the traffic they caused. baseSeed
// fixes every file's content, so two cells given the same baseSeed move
// byte-identical payloads.
func faultWorkload(s *service.Setup, baseSeed int64) int64 {
	mark := s.Capture.Mark()
	for i := 0; i < faultFiles; i++ {
		name := fmt.Sprintf("fault-%02d.bin", i)
		if err := s.FS.Create(name, content.Random(faultFileSize, baseSeed+int64(i))); err != nil {
			panic(fmt.Sprintf("core: fault workload: %v", err))
		}
		s.Clock.Run()
	}
	up, down, _ := s.Capture.Since(mark)
	return up + down
}

// FaultSweep measures how sync traffic overhead grows when the link is
// imperfect: Dropbox's PC client uploading a fixed series of fresh
// files over the Minnesota and Beijing vantage points with seeded
// per-exchange loss injected at each rate, plus one FaultyBeijing row
// that adds connection drops and stalls on top of the loss. All cells
// of one location share a content-seed base, so the clean baseline and
// the lossy cells move byte-identical payloads; every retransmission
// and reconnection handshake the schedule forces is charged to the
// capture, so TUE rises with the loss rate — the regime the paper's
// Fig. 7/8 can only hint at with clean shapers.
//
// Cells are pre-seeded (content seeds and fault seeds fixed at
// task-build time) and run on the worker pool.
func FaultSweep(lossProbs []float64) []FaultCell {
	type faultTask struct {
		loc  string
		link netem.Link
		prob float64
		seed int64
	}
	locations := []struct {
		name string
		link netem.Link
	}{
		{"MN", netem.Minnesota()},
		{"BJ", netem.Beijing()},
	}
	var tasks []faultTask
	for _, loc := range locations {
		// One reservation per location, shared by all its loss cells:
		// identical content isolates the fault schedule as the only
		// difference between a location's rows.
		baseSeed := reserveSeeds(faultFiles).Next()
		for i, p := range lossProbs {
			link := loc.link
			if p > 0 {
				link.Faults = &netem.FaultProfile{
					// The fault seed is a pure function of the cell's
					// coordinates, so the schedule is reproducible and
					// independent of the content-seed counter.
					Seed:     uint64(0xFA0000 + i),
					LossProb: p,
				}
			}
			tasks = append(tasks, faultTask{loc: loc.name, link: link, prob: p, seed: baseSeed})
		}
	}
	// The showcase row: Beijing with the full fault profile (loss +
	// drops + stalls).
	full := netem.FaultyBeijing()
	tasks = append(tasks, faultTask{
		loc: "BJ+faults", link: full, prob: full.Faults.LossProb,
		seed: reserveSeeds(faultFiles).Next(),
	})

	return parallel.Map(tasks, func(_ int, t faultTask) FaultCell {
		s := newSetup(service.Dropbox, client.PC, service.Options{Link: t.link})
		traffic := faultWorkload(s, t.seed)
		return FaultCell{
			Location: t.loc, LossProb: t.prob,
			TUE:    TUE(traffic, faultFiles*faultFileSize),
			Faults: s.Path.FaultStats(),
		}
	})
}

// RenderFaultSweep formats the fault-injection sweep.
func RenderFaultSweep(cells []FaultCell) string {
	tb := metrics.Table{Header: []string{"Link", "Loss", "TUE", "Retransmits", "Drops", "Stalls"}}
	for _, c := range cells {
		tb.AddRow(c.Location,
			fmt.Sprintf("%.0f%%", c.LossProb*100),
			fmtTUE(c.TUE),
			fmt.Sprintf("%d", c.Faults.Retransmits),
			fmt.Sprintf("%d", c.Faults.Drops),
			fmt.Sprintf("%d", c.Faults.Stalls))
	}
	return fmt.Sprintf("Fault injection: Dropbox uploading %d x %d KB files, TUE vs exchange loss x link\n",
		faultFiles, faultFileSize>>10) + tb.String()
}
