package core

import (
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/hardware"
	"cloudsync/internal/netem"
	"cloudsync/internal/service"
)

// AppendTotal is Experiment 6's total appended volume (C = 1 MB).
const AppendTotal = 1 << 20

// PaperXs are Experiment 6's append periods: X ∈ {1, …, 20} seconds.
func PaperXs() []float64 {
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}

// QuickXs is a reduced sweep.
func QuickXs() []float64 { return []float64{1, 2, 5, 8, 12, 20} }

// appendTUE runs one "X KB / X sec" experiment and reports its TUE.
func appendTUE(n service.Name, opts service.Options, x float64) float64 {
	s := service.NewSetup(n, client.PC, opts)
	traffic := appendWorkload(s, x, AppendTotal)
	return TUE(traffic, AppendTotal)
}

// Experiment6 reproduces Fig. 6: the TUE of each service's PC client
// under "X KB / X sec" appends from Minnesota on M1 hardware.
func Experiment6(services []service.Name, xs []float64) []Cell {
	var out []Cell
	for _, n := range services {
		for _, x := range xs {
			tue := appendTUE(n, service.Options{}, x)
			out = append(out, Cell{
				Service: n, Access: client.PC, Param: x,
				TUE: tue, Traffic: int64(tue * AppendTotal),
			})
		}
	}
	return out
}

// InferDeferment probes a service's fixed sync deferment the way
// § 6.1 does: scan fractional X values for the boundary between the
// batched regime (TUE ≈ 1) and the traffic-overuse regime. It reports
// the estimated deferment and whether one was detected at all.
func InferDeferment(n service.Name) (time.Duration, bool) {
	const batchedTUE = 3.0
	probe := func(x float64) bool { // true = still batched
		return appendTUE(n, service.Options{}, x) < batchedTUE
	}
	if !probe(0.6) {
		return 0, false // no deferment: overuse even at sub-second cadence
	}
	lo, hi := 0.6, 16.0
	if probe(hi) {
		return 0, false // batches at any cadence: not a fixed deferment
	}
	for hi-lo > 0.1 {
		mid := (lo + hi) / 2
		if probe(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return time.Duration((lo + hi) / 2 * float64(time.Second)), true
}

// PolicyCell is one ASD-evaluation measurement.
type PolicyCell struct {
	Service service.Name
	Policy  string
	X       float64
	TUE     float64
}

// ASDEvaluation compares the service's native deferment against the
// paper's proposed ASD and the UDS byte-counter baseline on the
// appending workload — the § 6.1 claim that ASD keeps TUE near 1 where
// fixed deferments fail (X > T).
func ASDEvaluation(n service.Name, xs []float64) []PolicyCell {
	policies := []struct {
		label string
		mk    func() deferpolicy.Policy
	}{
		{"native", func() deferpolicy.Policy { return nil }}, // service default
		{"asd", func() deferpolicy.Policy {
			return deferpolicy.NewASD(500*time.Millisecond, 45*time.Second)
		}},
		{"uds", func() deferpolicy.Policy {
			return deferpolicy.UDS{Threshold: 256 << 10, MaxDelay: 5 * time.Minute}
		}},
	}
	var out []PolicyCell
	for _, p := range policies {
		for _, x := range xs {
			tue := appendTUE(n, service.Options{Defer: p.mk()}, x)
			out = append(out, PolicyCell{Service: n, Policy: p.label, X: x, TUE: tue})
		}
	}
	return out
}

// LocationCell is one Fig. 7 measurement.
type LocationCell struct {
	Service  service.Name
	Location string
	X        float64
	TUE      float64
}

// Experiment7 reproduces Fig. 7: the appending workload from the
// Minnesota vantage point (close to the cloud) and from Beijing
// (remote), for the given services.
func Experiment7(services []service.Name, xs []float64) []LocationCell {
	locations := []struct {
		name string
		link netem.Link
	}{
		{"MN", netem.Minnesota()},
		{"BJ", netem.Beijing()},
	}
	var out []LocationCell
	for _, n := range services {
		for _, loc := range locations {
			for _, x := range xs {
				tue := appendTUE(n, service.Options{Link: loc.link}, x)
				out = append(out, LocationCell{Service: n, Location: loc.name, X: x, TUE: tue})
			}
		}
	}
	return out
}

// NetCell is one Fig. 8(a)/(b) measurement.
type NetCell struct {
	// Bps is the link bandwidth; RTT the round-trip time.
	Bps int64
	RTT time.Duration
	TUE float64
}

// Fig8aBandwidths is the paper's controlled bandwidth range.
var Fig8aBandwidths = []int64{1_600_000, 3_000_000, 5_000_000, 10_000_000, 15_000_000, 20_000_000}

// Fig8a reproduces Fig. 8(a): Dropbox handling "1 KB/sec" appends with
// the bandwidth tuned from 1.6 to 20 Mbps at ≈ 50 ms latency.
func Fig8a(bandwidths []int64) []NetCell {
	var out []NetCell
	for _, bps := range bandwidths {
		link := netem.Link{UpBps: bps, DownBps: bps, RTT: 50 * time.Millisecond}
		tue := appendTUE(service.Dropbox, service.Options{Link: link}, 1)
		out = append(out, NetCell{Bps: bps, RTT: link.RTT, TUE: tue})
	}
	return out
}

// Fig8bLatencies is the paper's controlled latency range.
var Fig8bLatencies = []time.Duration{
	40 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
	400 * time.Millisecond, 600 * time.Millisecond, 800 * time.Millisecond, time.Second,
}

// Fig8b reproduces Fig. 8(b): Dropbox handling "1 KB/sec" appends with
// the latency tuned from 40 to 1000 ms at 20 Mbps.
func Fig8b(latencies []time.Duration) []NetCell {
	var out []NetCell
	for _, rtt := range latencies {
		link := netem.Link{UpBps: 20_000_000, DownBps: 20_000_000, RTT: rtt}
		tue := appendTUE(service.Dropbox, service.Options{Link: link}, 1)
		out = append(out, NetCell{Bps: link.UpBps, RTT: rtt, TUE: tue})
	}
	return out
}

// HWCell is one Fig. 8(c) measurement.
type HWCell struct {
	Machine string
	X       float64
	TUE     float64
}

// Fig8c reproduces Fig. 8(c) / Experiment 7′: Dropbox handling the
// appending workload on the typical (M1), outdated (M2), and advanced
// (M3) machines.
func Fig8c(xs []float64) []HWCell {
	machines := []hardware.Profile{hardware.M1(), hardware.M2(), hardware.M3()}
	var out []HWCell
	for _, hw := range machines {
		for _, x := range xs {
			tue := appendTUE(service.Dropbox, service.Options{Hardware: hw}, x)
			out = append(out, HWCell{Machine: hw.Name, X: x, TUE: tue})
		}
	}
	return out
}
