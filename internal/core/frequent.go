package core

import (
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/hardware"
	"cloudsync/internal/netem"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
)

// AppendTotal is Experiment 6's total appended volume (C = 1 MB).
const AppendTotal = 1 << 20

// PaperXs are Experiment 6's append periods: X ∈ {1, …, 20} seconds.
func PaperXs() []float64 {
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}

// QuickXs is a reduced sweep.
func QuickXs() []float64 { return []float64{1, 2, 5, 8, 12, 20} }

// appendTUE runs one "X KB / X sec" experiment and reports its TUE.
// seed fixes the appended file's content identity; parallel callers
// pass a pre-reserved seed (see creationSeed's determinism contract).
func appendTUE(n service.Name, opts service.Options, x float64, seed int64) float64 {
	s := newSetup(n, client.PC, opts)
	traffic := appendWorkload(s, x, AppendTotal, seed)
	return TUE(traffic, AppendTotal)
}

// appendTask is one pre-seeded cell of an appending-workload sweep.
type appendTask struct {
	n    service.Name
	opts service.Options
	x    float64
	seed int64
}

// Experiment6 reproduces Fig. 6: the TUE of each service's PC client
// under "X KB / X sec" appends from Minnesota on M1 hardware. The
// (service × X) cells are independent and run on the worker pool.
func Experiment6(services []service.Name, xs []float64) []Cell {
	var tasks []appendTask
	for _, n := range services {
		for _, x := range xs {
			tasks = append(tasks, appendTask{n: n, x: x, seed: nextSeed()})
		}
	}
	return parallel.Map(tasks, func(_ int, t appendTask) Cell {
		tue := appendTUE(t.n, service.Options{}, t.x, t.seed)
		return Cell{
			Service: t.n, Access: client.PC, Param: t.x,
			TUE: tue, Traffic: int64(tue * AppendTotal),
		}
	})
}

// InferDeferment probes a service's fixed sync deferment the way
// § 6.1 does: scan fractional X values for the boundary between the
// batched regime (TUE ≈ 1) and the traffic-overuse regime. It reports
// the estimated deferment and whether one was detected at all.
//
// The bisection is inherently sequential (each probe's X depends on
// the previous outcome), so it reserves a private seed sequence up
// front and stays deterministic even when several InferDeferment calls
// run concurrently (see InferDeferments).
func InferDeferment(n service.Name) (time.Duration, bool) {
	const batchedTUE = 3.0
	// 2 boundary probes + at most ceil(log2((16-0.6)/0.1)) ≈ 8 bisection
	// steps; reserve with slack.
	seeds := reserveSeeds(16)
	probe := func(x float64) bool { // true = still batched
		return appendTUE(n, service.Options{}, x, seeds.Next()) < batchedTUE
	}
	if !probe(0.6) {
		return 0, false // no deferment: overuse even at sub-second cadence
	}
	lo, hi := 0.6, 16.0
	if probe(hi) {
		return 0, false // batches at any cadence: not a fixed deferment
	}
	for hi-lo > 0.1 {
		mid := (lo + hi) / 2
		if probe(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return time.Duration((lo + hi) / 2 * float64(time.Second)), true
}

// Deferment is one service's inferred sync deferment.
type Deferment struct {
	Service  service.Name
	Delay    time.Duration
	Detected bool
}

// InferDeferments runs InferDeferment for every given service on the
// worker pool, preserving input order.
func InferDeferments(services []service.Name) []Deferment {
	return parallel.Map(services, func(_ int, n service.Name) Deferment {
		d, ok := InferDeferment(n)
		return Deferment{Service: n, Delay: d, Detected: ok}
	})
}

// PolicyCell is one ASD-evaluation measurement.
type PolicyCell struct {
	Service service.Name
	Policy  string
	X       float64
	TUE     float64
}

// ASDEvaluation compares the service's native deferment against the
// paper's proposed ASD and the UDS byte-counter baseline on the
// appending workload — the § 6.1 claim that ASD keeps TUE near 1 where
// fixed deferments fail (X > T). The (policy × X) cells run on the
// worker pool.
func ASDEvaluation(n service.Name, xs []float64) []PolicyCell {
	policies := []struct {
		label string
		mk    func() deferpolicy.Policy
	}{
		{"native", func() deferpolicy.Policy { return nil }}, // service default
		{"asd", func() deferpolicy.Policy {
			return deferpolicy.NewASD(500*time.Millisecond, 45*time.Second)
		}},
		{"uds", func() deferpolicy.Policy {
			return deferpolicy.UDS{Threshold: 256 << 10, MaxDelay: 5 * time.Minute}
		}},
	}
	type task struct {
		label string
		mk    func() deferpolicy.Policy
		x     float64
		seed  int64
	}
	var tasks []task
	for _, p := range policies {
		for _, x := range xs {
			tasks = append(tasks, task{label: p.label, mk: p.mk, x: x, seed: nextSeed()})
		}
	}
	return parallel.Map(tasks, func(_ int, t task) PolicyCell {
		tue := appendTUE(n, service.Options{Defer: t.mk()}, t.x, t.seed)
		return PolicyCell{Service: n, Policy: t.label, X: t.x, TUE: tue}
	})
}

// LocationCell is one Fig. 7 measurement.
type LocationCell struct {
	Service  service.Name
	Location string
	X        float64
	TUE      float64
}

// Experiment7 reproduces Fig. 7: the appending workload from the
// Minnesota vantage point (close to the cloud) and from Beijing
// (remote), for the given services. Cells run on the worker pool.
func Experiment7(services []service.Name, xs []float64) []LocationCell {
	locations := []struct {
		name string
		link netem.Link
	}{
		{"MN", netem.Minnesota()},
		{"BJ", netem.Beijing()},
	}
	type task struct {
		n    service.Name
		loc  string
		link netem.Link
		x    float64
		seed int64
	}
	var tasks []task
	for _, n := range services {
		for _, loc := range locations {
			for _, x := range xs {
				tasks = append(tasks, task{n: n, loc: loc.name, link: loc.link, x: x, seed: nextSeed()})
			}
		}
	}
	return parallel.Map(tasks, func(_ int, t task) LocationCell {
		tue := appendTUE(t.n, service.Options{Link: t.link}, t.x, t.seed)
		return LocationCell{Service: t.n, Location: t.loc, X: t.x, TUE: tue}
	})
}

// NetCell is one Fig. 8(a)/(b) measurement.
type NetCell struct {
	// Bps is the link bandwidth; RTT the round-trip time.
	Bps int64
	RTT time.Duration
	TUE float64
}

// Fig8aBandwidths is the paper's controlled bandwidth range.
var Fig8aBandwidths = []int64{1_600_000, 3_000_000, 5_000_000, 10_000_000, 15_000_000, 20_000_000}

// Fig8a reproduces Fig. 8(a): Dropbox handling "1 KB/sec" appends with
// the bandwidth tuned from 1.6 to 20 Mbps at ≈ 50 ms latency.
func Fig8a(bandwidths []int64) []NetCell {
	seeds := make([]int64, len(bandwidths))
	for i := range seeds {
		seeds[i] = nextSeed()
	}
	return parallel.Map(bandwidths, func(i int, bps int64) NetCell {
		link := netem.Link{UpBps: bps, DownBps: bps, RTT: 50 * time.Millisecond}
		tue := appendTUE(service.Dropbox, service.Options{Link: link}, 1, seeds[i])
		return NetCell{Bps: bps, RTT: link.RTT, TUE: tue}
	})
}

// Fig8bLatencies is the paper's controlled latency range.
var Fig8bLatencies = []time.Duration{
	40 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
	400 * time.Millisecond, 600 * time.Millisecond, 800 * time.Millisecond, time.Second,
}

// Fig8b reproduces Fig. 8(b): Dropbox handling "1 KB/sec" appends with
// the latency tuned from 40 to 1000 ms at 20 Mbps.
func Fig8b(latencies []time.Duration) []NetCell {
	seeds := make([]int64, len(latencies))
	for i := range seeds {
		seeds[i] = nextSeed()
	}
	return parallel.Map(latencies, func(i int, rtt time.Duration) NetCell {
		link := netem.Link{UpBps: 20_000_000, DownBps: 20_000_000, RTT: rtt}
		tue := appendTUE(service.Dropbox, service.Options{Link: link}, 1, seeds[i])
		return NetCell{Bps: link.UpBps, RTT: rtt, TUE: tue}
	})
}

// HWCell is one Fig. 8(c) measurement.
type HWCell struct {
	Machine string
	X       float64
	TUE     float64
}

// Fig8c reproduces Fig. 8(c) / Experiment 7′: Dropbox handling the
// appending workload on the typical (M1), outdated (M2), and advanced
// (M3) machines.
func Fig8c(xs []float64) []HWCell {
	machines := []hardware.Profile{hardware.M1(), hardware.M2(), hardware.M3()}
	type task struct {
		hw   hardware.Profile
		x    float64
		seed int64
	}
	var tasks []task
	for _, hw := range machines {
		for _, x := range xs {
			tasks = append(tasks, task{hw: hw, x: x, seed: nextSeed()})
		}
	}
	return parallel.Map(tasks, func(_ int, t task) HWCell {
		tue := appendTUE(service.Dropbox, service.Options{Hardware: t.hw}, t.x, t.seed)
		return HWCell{Machine: t.hw.Name, X: t.x, TUE: tue}
	})
}
