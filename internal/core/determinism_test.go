package core

import (
	"testing"

	"cloudsync/internal/parallel"
	"cloudsync/internal/trace"
)

// renderAll runs a grid experiment and the full trace replay and
// returns their rendered tables — the exact byte streams tuebench
// prints. The creation-seed counter is reset first so both invocations
// see identical seed reservations.
func renderAll(t *testing.T) (table6, replay string) {
	t.Helper()
	creationSeed.Store(10_000)
	table6 = RenderTable6(Experiment1(QuickSizes), QuickSizes)
	recs := trace.Generate(trace.GenConfig{Seed: 1, Scale: 0.01})
	replay = RenderReplay(TraceReplayAll(recs, 100))
	return table6, replay
}

// TestParallelMatchesSequential is the determinism contract end to end:
// the worker pool must return byte-identical tables no matter how many
// workers execute the experiment cells.
func TestParallelMatchesSequential(t *testing.T) {
	parallel.SetWorkers(1)
	seqTable, seqReplay := renderAll(t)

	parallel.SetWorkers(8)
	defer parallel.SetWorkers(0)
	parTable, parReplay := renderAll(t)

	if parTable != seqTable {
		t.Errorf("Experiment1 table differs between workers=1 and workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqTable, parTable)
	}
	if parReplay != seqReplay {
		t.Errorf("TraceReplayAll table differs between workers=1 and workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqReplay, parReplay)
	}
}

// TestParallelMatchesSequentialBatch covers an experiment whose cells
// draw many seeds from pre-reserved sequences (100 files per cell).
func TestParallelMatchesSequentialBatch(t *testing.T) {
	run := func(workers int) []BatchCreationResult {
		parallel.SetWorkers(workers)
		creationSeed.Store(10_000)
		return Experiment1Batch()
	}
	seq := run(1)
	par := run(8)
	parallel.SetWorkers(0)
	if len(seq) != len(par) {
		t.Fatalf("result count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs: sequential %+v, parallel %+v", i, seq[i], par[i])
		}
	}
}
