// Fingerprinting: MD5 sums of blob content, whole-file and per
// fixed-size block, with two layers of memoization.
//
// Every cell of the experiment grid rebuilds its synthetic files, and
// the engine fingerprints the same content repeatedly — a probe upload
// hashes a blob once for the dedup probe and again at commit; a grid
// re-creates the same deterministic blob for every service. Literal
// blobs memoize their sums on the blob itself (guarded by the blob
// mutex); descriptor blobs — whose content is fully determined by
// (kind, seed, size) — share a process-wide LRU keyed by
// (kind, seed, size, blockSize), so re-chunking the same deterministic
// content in another cell is a map hit instead of a generate+hash pass.
// Materialization for hashing streams through pooled buffers
// (sync.Pool), so fingerprinting never allocates per call in steady
// state and works beyond MaterializeLimit.
package content

import (
	"container/list"
	"crypto/md5"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"cloudsync/internal/chunker"
)

// cdcKey is one content-defined chunking parameterization.
type cdcKey struct {
	min, avg, max int
}

// fpKey identifies a cached fingerprint computation. blockSize 0 with a
// zero cdc is the whole-content MD5; a positive blockSize is a
// fixed-block fingerprint pass; a non-zero cdc is a content-defined
// chunking (blockSize 0).
type fpKey struct {
	kind      Kind
	seed      int64
	size      int64
	blockSize int
	cdc       cdcKey
}

// fingerprintCache is a concurrency-safe LRU over descriptor-blob
// fingerprints. Capacity is counted in entries; one entry holds every
// block sum of one (blob, blockSize) pairing.
type fingerprintCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[fpKey]*list.Element

	hits, misses atomic.Int64
}

// fpEntry holds one computation's results: block sums for whole-file
// and fixed-block keys, full chunk records (geometry + sum) for
// content-defined keys.
type fpEntry struct {
	key    fpKey
	sums   [][md5.Size]byte
	blocks []chunker.Block
}

// DefaultFingerprintCacheCapacity bounds the process-wide cache. At 16
// bytes per block sum the worst case (4096 entries of a 64 MB blob at
// 128 KB blocks) stays under 35 MB; typical grids hold a few hundred
// small entries.
const DefaultFingerprintCacheCapacity = 4096

var fpCache = &fingerprintCache{
	capacity: DefaultFingerprintCacheCapacity,
	ll:       list.New(),
	entries:  make(map[fpKey]*list.Element),
}

func (c *fingerprintCache) get(k fpKey) (*fpEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*fpEntry), true
}

func (c *fingerprintCache) put(e *fpEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		// A concurrent caller computed the same key; the values are
		// identical by construction, keep the resident one.
		c.ll.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*fpEntry).key)
	}
}

// FingerprintCacheStats reports cumulative hit/miss counts and the
// current entry count of the descriptor fingerprint cache.
func FingerprintCacheStats() (hits, misses int64, entries int) {
	fpCache.mu.Lock()
	entries = fpCache.ll.Len()
	fpCache.mu.Unlock()
	return fpCache.hits.Load(), fpCache.misses.Load(), entries
}

// ResetFingerprintCache drops every cached fingerprint and zeroes the
// counters (for tests and benchmarks).
func ResetFingerprintCache() {
	fpCache.mu.Lock()
	defer fpCache.mu.Unlock()
	fpCache.ll.Init()
	fpCache.entries = make(map[fpKey]*list.Element)
	fpCache.hits.Store(0)
	fpCache.misses.Store(0)
}

// hashBuffers pools the scratch buffers fingerprinting streams blob
// content through, so repeated hashing does not re-allocate block-sized
// slices. Buffers are grown to the largest requested block size and
// reused across sizes.
var hashBuffers = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256<<10)
		return &b
	},
}

func getHashBuffer(n int) *[]byte {
	bp := hashBuffers.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// MD5 returns the MD5 of the blob's full content. Literal blobs hash
// their bytes once and memoize the sum; descriptor blobs stream their
// generator through a pooled buffer and memoize both on the blob and in
// the process-wide cache. Unlike Bytes, MD5 works beyond
// MaterializeLimit.
func (b *Blob) MD5() [md5.Size]byte {
	b.mu.Lock()
	if b.sumOK {
		defer b.mu.Unlock()
		return b.sum
	}
	if b.kind == KindBytes {
		defer b.mu.Unlock()
		b.sum = md5.Sum(b.data)
		b.sumOK = true
		return b.sum
	}
	b.mu.Unlock()

	key := fpKey{kind: b.kind, seed: b.seed, size: b.size}
	if e, ok := fpCache.get(key); ok {
		return b.rememberSum(e.sums[0])
	}
	h := md5.New()
	bp := getHashBuffer(256 << 10)
	defer hashBuffers.Put(bp)
	if _, err := io.CopyBuffer(h, b.Reader(), *bp); err != nil {
		panic(fmt.Sprintf("content: hashing %v: %v", b, err))
	}
	var sum [md5.Size]byte
	h.Sum(sum[:0])
	fpCache.put(&fpEntry{key: key, sums: [][md5.Size]byte{sum}})
	return b.rememberSum(sum)
}

func (b *Blob) rememberSum(sum [md5.Size]byte) [md5.Size]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sum, b.sumOK = sum, true
	return sum
}

// BlockFingerprints returns the MD5 of every fixed-size block of the
// blob's content (the final block may be short; an empty blob has no
// blocks). The result is shared with the caches — callers must not
// mutate it. Descriptor blobs hit the process-wide LRU keyed by
// (kind, seed, size, blockSize); literal blobs memoize per blob and
// block size.
func BlockFingerprints(b *Blob, blockSize int) [][md5.Size]byte {
	if blockSize <= 0 {
		panic(fmt.Sprintf("content: invalid block size %d", blockSize))
	}
	if b.size == 0 {
		return nil
	}

	if b.kind == KindBytes {
		b.mu.Lock()
		defer b.mu.Unlock()
		if sums, ok := b.blockSums[blockSize]; ok {
			return sums
		}
		sums := make([][md5.Size]byte, 0, (len(b.data)+blockSize-1)/blockSize)
		for off := 0; off < len(b.data); off += blockSize {
			end := off + blockSize
			if end > len(b.data) {
				end = len(b.data)
			}
			sums = append(sums, md5.Sum(b.data[off:end]))
		}
		if b.blockSums == nil {
			b.blockSums = make(map[int][][md5.Size]byte)
		}
		b.blockSums[blockSize] = sums
		return sums
	}

	key := fpKey{kind: b.kind, seed: b.seed, size: b.size, blockSize: blockSize}
	if e, ok := fpCache.get(key); ok {
		return e.sums
	}
	n := (b.size + int64(blockSize) - 1) / int64(blockSize)
	sums := make([][md5.Size]byte, 0, n)
	bp := getHashBuffer(blockSize)
	defer hashBuffers.Put(bp)
	r := b.Reader()
	for {
		n, err := io.ReadFull(r, *bp)
		if n > 0 {
			sums = append(sums, md5.Sum((*bp)[:n]))
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			panic(fmt.Sprintf("content: fingerprinting %v: %v", b, err))
		}
	}
	fpCache.put(&fpEntry{key: key, sums: sums})
	return sums
}

// CDCFingerprints returns the content-defined chunking of the blob —
// exactly chunker.ContentDefined(b.Bytes(), min, avg, max) — through
// the same two-layer memoization as BlockFingerprints: literal blobs
// memoize per blob and parameter triple, descriptor blobs share the
// process-wide LRU keyed by blob identity plus the triple. The boundary
// scan runs geometry-first (chunker.CutPoints) and the strong hashes
// are batched over the resulting ranges, so a cache hit skips both
// passes. The result is shared with the caches — callers must not
// mutate it. Unlike BlockFingerprints this materializes the content
// (the rolling scan needs the bytes in memory), so it panics beyond
// MaterializeLimit.
func CDCFingerprints(b *Blob, min, avg, max int) []chunker.Block {
	ck := cdcKey{min: min, avg: avg, max: max}
	if b.kind == KindBytes {
		b.mu.Lock()
		defer b.mu.Unlock()
		if blocks, ok := b.cdcBlocks[ck]; ok {
			return blocks
		}
		blocks := chunker.ContentDefined(b.data, min, avg, max)
		if b.cdcBlocks == nil {
			b.cdcBlocks = make(map[cdcKey][]chunker.Block)
		}
		b.cdcBlocks[ck] = blocks
		return blocks
	}
	key := fpKey{kind: b.kind, seed: b.seed, size: b.size, cdc: ck}
	if e, ok := fpCache.get(key); ok {
		return e.blocks
	}
	blocks := chunker.ContentDefined(b.Bytes(), min, avg, max)
	fpCache.put(&fpEntry{key: key, blocks: blocks})
	return blocks
}
