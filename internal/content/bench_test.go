package content

import (
	"testing"
)

func BenchmarkMaterializeRandom(b *testing.B) {
	const size = 4 << 20
	b.SetBytes(size)
	for i := 0; i < b.N; i++ {
		blob := Random(size, int64(i))
		if len(blob.Bytes()) != size {
			b.Fatal("short materialization")
		}
	}
}

func BenchmarkMaterializeText(b *testing.B) {
	const size = 4 << 20
	b.SetBytes(size)
	for i := 0; i < b.N; i++ {
		blob := Text(size, int64(i))
		if len(blob.Bytes()) != size {
			b.Fatal("short materialization")
		}
	}
}

// BenchmarkMD5Cold hashes a distinct blob every iteration: the
// streaming path with a pooled buffer, no cache reuse.
func BenchmarkMD5Cold(b *testing.B) {
	const size = 4 << 20
	b.SetBytes(size)
	for i := 0; i < b.N; i++ {
		ResetFingerprintCache()
		blob := Random(size, 7)
		_ = blob.MD5()
	}
}

// BenchmarkMD5Cached re-hashes the same descriptor identity; after the
// first iteration every call is an LRU hit.
func BenchmarkMD5Cached(b *testing.B) {
	const size = 4 << 20
	ResetFingerprintCache()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := Random(size, 7)
		_ = blob.MD5()
	}
}

// BenchmarkBlockFingerprintsCold computes per-block MD5s of a distinct
// blob identity every iteration.
func BenchmarkBlockFingerprintsCold(b *testing.B) {
	const size = 4 << 20
	b.SetBytes(size)
	for i := 0; i < b.N; i++ {
		ResetFingerprintCache()
		blob := Random(size, 7)
		if fps := BlockFingerprints(blob, 512<<10); len(fps) == 0 {
			b.Fatal("no fingerprints")
		}
	}
}

// BenchmarkBlockFingerprintsCached hits the LRU on every iteration
// after the first — the probe/commit pattern of an upload, and the
// repeated uploads of one grid cell's shared content.
func BenchmarkBlockFingerprintsCached(b *testing.B) {
	const size = 4 << 20
	ResetFingerprintCache()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := Random(size, 7)
		if fps := BlockFingerprints(blob, 512<<10); len(fps) == 0 {
			b.Fatal("no fingerprints")
		}
	}
}
