// Package content provides deterministic synthetic file content for
// experiments: incompressible random data ("highly compressed files" in
// the paper's terms), English-like text ("filled with random English
// words"), runs of zeros, and literal byte blobs.
//
// A Blob is an immutable content descriptor. Descriptor blobs (random,
// text, zeros) generate their bytes lazily from a seed, so experiments
// can create multi-gigabyte files without allocating them; two blobs
// with the same kind, seed, and size have byte-identical content, and a
// longer blob's content is a strict extension of a shorter one with the
// same seed — which is what makes append workloads cheap to model.
package content

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"cloudsync/internal/chunker"
)

// MaterializeLimit is the largest blob Bytes will materialize. It keeps
// accidental gigabyte allocations out of tests and benchmarks; the
// experiment harness only materializes content when an algorithm (delta
// sync, real compression, block hashing) genuinely needs the bytes.
const MaterializeLimit = 64 << 20

// Kind classifies blob content.
type Kind uint8

const (
	// KindRandom is incompressible pseudo-random data.
	KindRandom Kind = iota
	// KindText is English-like text built from a fixed vocabulary.
	KindText
	// KindZeros is all zero bytes (maximally compressible).
	KindZeros
	// KindBytes is literal caller-supplied data.
	KindBytes
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRandom:
		return "random"
	case KindText:
		return "text"
	case KindZeros:
		return "zeros"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Blob is an immutable content descriptor. Its lazy caches (the
// materialized bytes and the fingerprints of fingerprint.go) are
// guarded by mu, so a blob shared across concurrent experiment cells
// is safe to read from every goroutine.
type Blob struct {
	kind Kind
	size int64
	seed int64

	mu        sync.Mutex
	data      []byte // literal data for KindBytes; cache for others
	sum       [md5.Size]byte
	sumOK     bool
	blockSums map[int][][md5.Size]byte
	cdcBlocks map[cdcKey][]chunker.Block
}

// Random returns an incompressible blob of the given size. Blobs with
// equal seeds share a common prefix.
//
// Seeds index windows of one global splitmix stream: a blob with seed
// s+Δ carries the same bytes as seed s shifted by 8·Δ. Blobs whose
// seeds differ by less than size/8 therefore overlap, and a
// rolling-hash delta sync will find that overlap. Callers that need
// genuinely independent contents (e.g. to assert a traffic lower
// bound) must space seeds by more than size/8.
func Random(size, seed int64) *Blob {
	checkSize(size)
	return &Blob{kind: KindRandom, size: size, seed: seed}
}

// Text returns an English-like text blob of the given size. Blobs with
// equal seeds share a common prefix.
func Text(size, seed int64) *Blob {
	checkSize(size)
	return &Blob{kind: KindText, size: size, seed: seed}
}

// Zeros returns an all-zero blob.
func Zeros(size int64) *Blob {
	checkSize(size)
	return &Blob{kind: KindZeros, size: size}
}

// FromBytes wraps literal data. The blob takes ownership of the slice;
// the caller must not mutate it afterwards.
func FromBytes(data []byte) *Blob {
	return &Blob{kind: KindBytes, size: int64(len(data)), data: data}
}

// FromDescriptor reconstructs a descriptor blob from its (kind, size,
// seed) triple — the inverse of the Identity encoding, used by durable
// stores that persist large blobs as descriptors instead of bytes.
// KindBytes is not a descriptor; literal content goes through FromBytes.
func FromDescriptor(kind Kind, size, seed int64) *Blob {
	if kind == KindBytes {
		panic("content: FromDescriptor with KindBytes; use FromBytes")
	}
	checkSize(size)
	return &Blob{kind: kind, size: size, seed: seed}
}

func checkSize(size int64) {
	if size < 0 {
		panic(fmt.Sprintf("content: negative blob size %d", size))
	}
}

// Size reports the blob length in bytes.
func (b *Blob) Size() int64 { return b.size }

// Kind reports the content kind.
func (b *Blob) Kind() Kind { return b.kind }

// Seed reports the generator seed (zero for KindBytes and KindZeros).
func (b *Blob) Seed() int64 { return b.seed }

// Resize returns a blob of the same kind and seed with a new size. For
// descriptor kinds the shorter blob's content is a prefix of the
// longer's, so growing a file by appending is Resize to a larger size.
// For KindBytes only shrinking is possible; growing panics.
func (b *Blob) Resize(size int64) *Blob {
	checkSize(size)
	if b.kind == KindBytes {
		if size > b.size {
			panic("content: cannot grow a literal blob; use Concat")
		}
		return FromBytes(b.data[:size])
	}
	return &Blob{kind: b.kind, size: size, seed: b.seed}
}

// Mutate returns the blob as it would look after flipping the byte at
// off: same size, different content. Literal blobs flip the actual
// byte; descriptor blobs derive a new generator seed from the old seed
// and the offset, which changes the content identity (and therefore
// every fingerprint) exactly as a real edit would, without
// materializing anything.
func (b *Blob) Mutate(off int64) *Blob {
	if off < 0 || off >= b.size {
		panic(fmt.Sprintf("content: Mutate offset %d outside %d-byte blob", off, b.size))
	}
	if b.kind == KindBytes {
		data := append([]byte(nil), b.data...)
		data[off] ^= 0xFF
		return FromBytes(data)
	}
	newSeed := b.seed*1_000_003 + off + 1
	kind := b.kind
	if kind == KindZeros {
		// A flipped byte makes the content non-zero; random is the
		// closest descriptor representation.
		kind = KindRandom
	}
	return &Blob{kind: kind, size: b.size, seed: newSeed}
}

// Concat returns a blob whose content is b followed by other. The
// result is materialized, so the combined size must not exceed
// MaterializeLimit.
func (b *Blob) Concat(other *Blob) *Blob {
	total := b.size + other.size
	if total > MaterializeLimit {
		panic(fmt.Sprintf("content: Concat of %d bytes exceeds MaterializeLimit", total))
	}
	out := make([]byte, 0, total)
	out = append(out, b.Bytes()...)
	out = append(out, other.Bytes()...)
	return FromBytes(out)
}

// Bytes materializes the blob's content. The result is cached; callers
// must not mutate it. Bytes panics if the blob exceeds MaterializeLimit
// — experiments at that scale must work from the descriptor.
func (b *Blob) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytesLocked()
}

func (b *Blob) bytesLocked() []byte {
	if b.data != nil || b.size == 0 {
		if b.data == nil {
			b.data = []byte{}
		}
		return b.data
	}
	if b.size > MaterializeLimit {
		panic(fmt.Sprintf("content: Bytes on %d-byte blob exceeds MaterializeLimit", b.size))
	}
	data := make([]byte, b.size)
	n, err := io.ReadFull(b.Reader(), data)
	if err != nil || int64(n) != b.size {
		panic(fmt.Sprintf("content: generator produced %d/%d bytes: %v", n, b.size, err))
	}
	b.data = data
	return data
}

// Reader returns a new reader streaming the blob's content from the
// start. Readers are independent; each call restarts the stream.
func (b *Blob) Reader() io.Reader {
	switch b.kind {
	case KindBytes:
		return &sliceReader{data: b.data}
	case KindZeros:
		return &zeroReader{remaining: b.size}
	case KindRandom:
		return &randomReader{remaining: b.size, state: splitmixInit(b.seed)}
	case KindText:
		return newTextReader(b.size, b.seed)
	default:
		panic(fmt.Sprintf("content: unknown kind %d", b.kind))
	}
}

// Identity returns a stable key that is equal exactly when two blobs
// have identical content, within a representation: descriptor blobs
// compare by (kind, seed, size); literal blobs compare by MD5 of their
// bytes. A descriptor blob and a literal blob with the same content
// intentionally do not share an identity — the simulation always keeps
// one representation per logical file, and this keeps identity O(1) for
// arbitrarily large descriptor blobs.
func (b *Blob) Identity() string {
	if b.kind == KindBytes {
		return fmt.Sprintf("md5:%x", b.MD5())
	}
	return fmt.Sprintf("gen:%d:%d:%d", b.kind, b.seed, b.size)
}

// Equal reports whether two blobs have the same identity.
func (b *Blob) Equal(other *Blob) bool {
	return b.Identity() == other.Identity()
}

// String describes the blob.
func (b *Blob) String() string {
	return fmt.Sprintf("blob(%s, %d bytes, seed=%d)", b.kind, b.size, b.seed)
}

// splitmix64 is a tiny, fast, well-distributed PRNG used for content
// generation. It is deliberately independent of math/rand so that blob
// content never changes across Go releases.
func splitmixInit(seed int64) uint64 {
	return uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
}

func splitmixNext(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

type zeroReader struct {
	remaining int64
}

func (r *zeroReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > r.remaining {
		n = int(r.remaining)
	}
	for i := 0; i < n; i++ {
		p[i] = 0
	}
	r.remaining -= int64(n)
	return n, nil
}

type randomReader struct {
	remaining int64
	state     uint64
	buf       [8]byte
	bufLen    int
}

func (r *randomReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > r.remaining {
		n = int(r.remaining)
	}
	for i := 0; i < n; i++ {
		if r.bufLen == 0 {
			binary.LittleEndian.PutUint64(r.buf[:], splitmixNext(&r.state))
			r.bufLen = 8
		}
		p[i] = r.buf[8-r.bufLen]
		r.bufLen--
	}
	r.remaining -= int64(n)
	return n, nil
}

// vocabulary is the shared word list for text blobs, built
// deterministically at init from a fixed seed. Its size and word-length
// distribution are tuned so that flate on generated text achieves a
// compression ratio comparable to the paper's measurements of real
// documents (best-effort compression to roughly 45 % of original size).
var vocabulary = buildVocabulary()

func buildVocabulary() []string {
	const words = 8192
	state := splitmixInit(0x7E57C0DE)
	out := make([]string, words)
	for i := range out {
		n := 2 + int(splitmixNext(&state)%10)
		w := make([]byte, n)
		for j := range w {
			w[j] = byte('a' + splitmixNext(&state)%26)
		}
		out[i] = string(w)
	}
	return out
}

type textReader struct {
	remaining int64
	state     uint64
	pending   []byte
}

func newTextReader(size, seed int64) *textReader {
	return &textReader{remaining: size, state: splitmixInit(seed ^ 0x7E57)}
}

func (r *textReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && r.remaining > 0 {
		if len(r.pending) == 0 {
			r.pending = r.nextToken()
		}
		n := copy(p[total:], r.pending)
		if int64(n) > r.remaining {
			n = int(r.remaining)
		}
		r.pending = r.pending[n:]
		total += n
		r.remaining -= int64(n)
	}
	return total, nil
}

func (r *textReader) nextToken() []byte {
	v := splitmixNext(&r.state)
	word := vocabulary[v%uint64(len(vocabulary))]
	switch (v >> 32) % 20 {
	case 0:
		return []byte(word + ".\n")
	case 1:
		return []byte(word + ", ")
	case 2:
		// Occasional numeric token keeps the entropy realistic.
		return []byte(fmt.Sprintf("%d ", v%100000))
	default:
		return []byte(word + " ")
	}
}
