package content

import (
	"bytes"
	"compress/flate"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRandom: "random", KindText: "text", KindZeros: "zeros", KindBytes: "bytes",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind %d = %q, want %q", k, got, want)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestDeterministicContent(t *testing.T) {
	for _, k := range []Kind{KindRandom, KindText} {
		var mk func(int64, int64) *Blob
		if k == KindRandom {
			mk = Random
		} else {
			mk = Text
		}
		a := mk(10000, 7).Bytes()
		b := mk(10000, 7).Bytes()
		if !bytes.Equal(a, b) {
			t.Fatalf("%v: same (size,seed) gave different content", k)
		}
		c := mk(10000, 8).Bytes()
		if bytes.Equal(a, c) {
			t.Fatalf("%v: different seeds gave identical content", k)
		}
	}
}

func TestPrefixStability(t *testing.T) {
	for _, k := range []Kind{KindRandom, KindText, KindZeros} {
		var short, long *Blob
		switch k {
		case KindRandom:
			short, long = Random(1000, 3), Random(5000, 3)
		case KindText:
			short, long = Text(1000, 3), Text(5000, 3)
		case KindZeros:
			short, long = Zeros(1000), Zeros(5000)
		}
		if !bytes.Equal(short.Bytes(), long.Bytes()[:1000]) {
			t.Fatalf("%v: longer blob is not an extension of shorter", k)
		}
	}
}

func TestResizeGrowsConsistently(t *testing.T) {
	b := Random(100, 9)
	big := b.Resize(300)
	if big.Size() != 300 || big.Seed() != 9 || big.Kind() != KindRandom {
		t.Fatalf("Resize result = %v", big)
	}
	if !bytes.Equal(b.Bytes(), big.Bytes()[:100]) {
		t.Fatal("Resize broke prefix property")
	}
}

func TestResizeLiteral(t *testing.T) {
	b := FromBytes([]byte("hello world"))
	small := b.Resize(5)
	if string(small.Bytes()) != "hello" {
		t.Fatalf("shrunk literal = %q", small.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("growing literal blob did not panic")
		}
	}()
	b.Resize(100)
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	Random(-1, 0)
}

func TestZeros(t *testing.T) {
	b := Zeros(1000)
	for i, v := range b.Bytes() {
		if v != 0 {
			t.Fatalf("byte %d = %d", i, v)
		}
	}
}

func TestEmptyBlob(t *testing.T) {
	for _, b := range []*Blob{Random(0, 1), Text(0, 1), Zeros(0), FromBytes(nil)} {
		if len(b.Bytes()) != 0 {
			t.Fatalf("%v: empty blob produced bytes", b)
		}
		n, err := b.Reader().Read(make([]byte, 10))
		if n != 0 || err != io.EOF {
			t.Fatalf("%v: empty reader = (%d, %v)", b, n, err)
		}
	}
}

func TestReaderMatchesBytes(t *testing.T) {
	b := Text(50000, 11)
	var buf bytes.Buffer
	// Read in odd-sized chunks to exercise generator state handling.
	r := b.Reader()
	tmp := make([]byte, 1237)
	for {
		n, err := r.Read(tmp)
		buf.Write(tmp[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), b.Bytes()) {
		t.Fatal("chunked reader output differs from Bytes()")
	}
}

func TestConcat(t *testing.T) {
	a := FromBytes([]byte("foo"))
	b := FromBytes([]byte("bar"))
	c := a.Concat(b)
	if string(c.Bytes()) != "foobar" {
		t.Fatalf("Concat = %q", c.Bytes())
	}
	// Self-duplication — the operation Algorithm 1 relies on.
	f1 := Random(4096, 5)
	f2 := f1.Concat(f1)
	if f2.Size() != 8192 {
		t.Fatalf("self-concat size = %d", f2.Size())
	}
	if !bytes.Equal(f2.Bytes()[:4096], f2.Bytes()[4096:]) {
		t.Fatal("self-concat halves differ")
	}
}

func TestConcatOverLimitPanics(t *testing.T) {
	a := Random(MaterializeLimit, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Concat did not panic")
		}
	}()
	a.Concat(Random(1, 2))
}

func TestBytesOverLimitPanics(t *testing.T) {
	b := Random(MaterializeLimit+1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Bytes did not panic")
		}
	}()
	b.Bytes()
}

func TestIdentity(t *testing.T) {
	if Random(100, 1).Identity() != Random(100, 1).Identity() {
		t.Fatal("identical descriptors have different identities")
	}
	if Random(100, 1).Identity() == Random(100, 2).Identity() {
		t.Fatal("different seeds share identity")
	}
	if Random(100, 1).Identity() == Random(101, 1).Identity() {
		t.Fatal("different sizes share identity")
	}
	if Random(100, 1).Identity() == Text(100, 1).Identity() {
		t.Fatal("different kinds share identity")
	}
	a := FromBytes([]byte("same"))
	b := FromBytes([]byte("same"))
	if !a.Equal(b) {
		t.Fatal("equal literal blobs not Equal")
	}
	if a.Equal(FromBytes([]byte("diff"))) {
		t.Fatal("different literals Equal")
	}
}

func TestStringer(t *testing.T) {
	if s := Random(10, 1).String(); !strings.Contains(s, "random") {
		t.Fatalf("String() = %q", s)
	}
}

func flateRatio(t *testing.T, data []byte) float64 {
	t.Helper()
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	w.Close()
	return float64(buf.Len()) / float64(len(data))
}

func TestRandomIsIncompressible(t *testing.T) {
	r := flateRatio(t, Random(1<<20, 42).Bytes())
	if r < 0.99 {
		t.Fatalf("random content compressed to %.3f, want ≈ 1.0", r)
	}
}

func TestTextIsCompressibleLikeDocuments(t *testing.T) {
	// The paper's 10 MB random-word file compressed to ~45 % with
	// best-effort compression; our generator should land in that region.
	r := flateRatio(t, Text(1<<20, 42).Bytes())
	if r < 0.30 || r > 0.60 {
		t.Fatalf("text content compressed to %.3f, want 0.30–0.60", r)
	}
}

func TestZerosAreHighlyCompressible(t *testing.T) {
	r := flateRatio(t, Zeros(1<<20).Bytes())
	if r > 0.01 {
		t.Fatalf("zeros compressed to %.4f, want < 0.01", r)
	}
}

// Property: for any size and seed, Bytes() length equals Size() and
// repeated materialization is stable.
func TestPropertyBytesLength(t *testing.T) {
	f := func(size uint16, seed int64, kindSel uint8) bool {
		var b *Blob
		switch kindSel % 3 {
		case 0:
			b = Random(int64(size), seed)
		case 1:
			b = Text(int64(size), seed)
		default:
			b = Zeros(int64(size))
		}
		data := b.Bytes()
		return int64(len(data)) == b.Size() && bytes.Equal(data, b.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix stability holds for arbitrary size pairs.
func TestPropertyPrefix(t *testing.T) {
	f := func(a, b uint16, seed int64) bool {
		small, big := int64(a), int64(b)
		if small > big {
			small, big = big, small
		}
		x := Random(small, seed)
		y := Random(big, seed)
		return bytes.Equal(x.Bytes(), y.Bytes()[:small])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomGeneration(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		blob := Random(1<<20, int64(i))
		io.Copy(io.Discard, blob.Reader())
	}
}

func BenchmarkTextGeneration(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		blob := Text(1<<20, int64(i))
		io.Copy(io.Discard, blob.Reader())
	}
}
