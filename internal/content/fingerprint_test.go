package content

import (
	"crypto/md5"
	"sync"
	"testing"

	"cloudsync/internal/chunker"
)

// TestBlockFingerprintsMatchDirectHashing checks every kind against a
// straight materialize-and-hash reference.
func TestBlockFingerprintsMatchDirectHashing(t *testing.T) {
	ResetFingerprintCache()
	blobs := []*Blob{
		Random(100<<10, 7),
		Text(33<<10, 8),
		Zeros(5000),
		FromBytes([]byte("hello fingerprint world")),
		Random(8<<10, 9), // exact multiple of the block size
	}
	const bs = 8 << 10
	for _, b := range blobs {
		want := fixedSums(b.Bytes(), bs)
		got := BlockFingerprints(b, bs)
		if len(got) != len(want) {
			t.Fatalf("%v: %d blocks, want %d", b, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v block %d: sum mismatch", b, i)
			}
		}
		if full := b.MD5(); full != md5.Sum(b.Bytes()) {
			t.Fatalf("%v: MD5 mismatch", b)
		}
	}
	if BlockFingerprints(Zeros(0), bs) != nil {
		t.Fatal("empty blob should have no blocks")
	}
}

func fixedSums(data []byte, bs int) [][md5.Size]byte {
	var out [][md5.Size]byte
	for off := 0; off < len(data); off += bs {
		end := off + bs
		if end > len(data) {
			end = len(data)
		}
		out = append(out, md5.Sum(data[off:end]))
	}
	return out
}

// TestFingerprintCacheHitsAcrossBlobInstances is the grid scenario: two
// distinct Blob values describing the same deterministic content share
// one computation.
func TestFingerprintCacheHitsAcrossBlobInstances(t *testing.T) {
	ResetFingerprintCache()
	a := BlockFingerprints(Random(64<<10, 42), 4<<10)
	b := BlockFingerprints(Random(64<<10, 42), 4<<10)
	hits, misses, entries := FingerprintCacheStats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("stats = %d hits / %d misses / %d entries, want 1/1/1", hits, misses, entries)
	}
	if &a[0] != &b[0] {
		t.Fatal("second lookup did not return the cached slice")
	}
	// Different block size, seed, or size are distinct entries.
	BlockFingerprints(Random(64<<10, 42), 8<<10)
	BlockFingerprints(Random(64<<10, 43), 4<<10)
	BlockFingerprints(Random(32<<10, 42), 4<<10)
	if _, _, entries := FingerprintCacheStats(); entries != 4 {
		t.Fatalf("entries = %d, want 4 distinct keys", entries)
	}
}

func TestFingerprintCacheEviction(t *testing.T) {
	ResetFingerprintCache()
	old := fpCache.capacity
	fpCache.capacity = 3
	defer func() { fpCache.capacity = old; ResetFingerprintCache() }()

	for seed := int64(0); seed < 5; seed++ {
		BlockFingerprints(Random(1<<10, seed), 512)
	}
	if _, _, entries := FingerprintCacheStats(); entries != 3 {
		t.Fatalf("entries = %d, want capacity 3", entries)
	}
	// Seed 0 and 1 were evicted; seed 4 is resident.
	BlockFingerprints(Random(1<<10, 4), 512)
	hits, _, _ := FingerprintCacheStats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (most recent entry resident)", hits)
	}
	BlockFingerprints(Random(1<<10, 0), 512)
	if h, _, _ := FingerprintCacheStats(); h != 1 {
		t.Fatalf("evicted entry unexpectedly hit (hits = %d)", h)
	}
}

// TestLiteralBlobMemoization: literal content cannot use the
// descriptor cache but memoizes on the blob itself.
func TestLiteralBlobMemoization(t *testing.T) {
	ResetFingerprintCache()
	b := FromBytes(make([]byte, 100<<10))
	s1 := BlockFingerprints(b, 4<<10)
	s2 := BlockFingerprints(b, 4<<10)
	if &s1[0] != &s2[0] {
		t.Fatal("literal block sums not memoized per blob")
	}
	if _, misses, _ := FingerprintCacheStats(); misses != 0 {
		t.Fatal("literal blobs must not touch the descriptor cache")
	}
	if b.MD5() != b.MD5() {
		t.Fatal("full MD5 not stable")
	}
}

// TestConcurrentFingerprinting hammers one key and one blob from many
// goroutines; run under -race this is the determinism safety net for
// the parallel experiment grid.
func TestConcurrentFingerprinting(t *testing.T) {
	ResetFingerprintCache()
	shared := Random(256<<10, 99)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				BlockFingerprints(Random(256<<10, 99), 16<<10)
				BlockFingerprints(shared, 16<<10)
				shared.MD5()
				shared.Bytes()
				shared.Identity()
			}
		}()
	}
	wg.Wait()
	want := fixedSums(shared.Bytes(), 16<<10)
	got := BlockFingerprints(shared, 16<<10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d corrupted under concurrency", i)
		}
	}
}

// TestCDCFingerprintsMatchChunker holds CDCFingerprints to a straight
// chunker.ContentDefined pass on the materialized bytes, for every
// blob kind.
func TestCDCFingerprintsMatchChunker(t *testing.T) {
	ResetFingerprintCache()
	const min, avg, max = 2 << 10, 8 << 10, 32 << 10
	blobs := []*Blob{
		Random(100<<10, 7),
		Text(65<<10, 8),
		Zeros(50_000),
		FromBytes(append([]byte("cdc fingerprint"), Random(40<<10, 11).Bytes()...)),
	}
	for _, b := range blobs {
		want := chunker.ContentDefined(b.Bytes(), min, avg, max)
		got := CDCFingerprints(b, min, avg, max)
		if len(got) != len(want) {
			t.Fatalf("%v: %d chunks, want %d", b, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v chunk %d: %+v, want %+v", b, i, got[i], want[i])
			}
		}
	}
	if CDCFingerprints(Zeros(0), min, avg, max) != nil {
		t.Fatal("empty blob should have no chunks")
	}
}

// TestCDCFingerprintsCacheReuse: descriptor blobs share one chunking
// per (identity, params) across instances; literal blobs memoize on the
// blob; distinct params are distinct entries.
func TestCDCFingerprintsCacheReuse(t *testing.T) {
	ResetFingerprintCache()
	const min, avg, max = 1 << 10, 4 << 10, 16 << 10
	a := CDCFingerprints(Random(64<<10, 42), min, avg, max)
	b := CDCFingerprints(Random(64<<10, 42), min, avg, max)
	hits, misses, entries := FingerprintCacheStats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("stats = %d hits / %d misses / %d entries, want 1/1/1", hits, misses, entries)
	}
	if &a[0] != &b[0] {
		t.Fatal("second lookup did not return the cached chunking")
	}
	// A different parameter triple or a fixed-block pass on the same
	// content is a distinct entry, not a collision.
	CDCFingerprints(Random(64<<10, 42), min, avg, 32<<10)
	BlockFingerprints(Random(64<<10, 42), avg)
	if _, _, entries := FingerprintCacheStats(); entries != 3 {
		t.Fatalf("entries = %d, want 3 distinct keys", entries)
	}

	lit := FromBytes(Random(64<<10, 42).Bytes())
	la := CDCFingerprints(lit, min, avg, max)
	lb := CDCFingerprints(lit, min, avg, max)
	if &la[0] != &lb[0] {
		t.Fatal("literal blob did not memoize its chunking")
	}
	if _, _, entries := FingerprintCacheStats(); entries != 3 {
		t.Fatal("literal blob chunking must not occupy the process-wide cache")
	}
}
