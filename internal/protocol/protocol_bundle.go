package protocol

import "fmt"

// Bundle message types: the paper's batching remedy applied to the live
// protocol. A session full of tiny uploads pays one full request
// exchange per file in lockstep mode; a Bundle coalesces N small
// uploads into a single framed message the server demultiplexes and
// commits per-file, answering all of them with one BundleReply. One
// frame header and one round trip amortize across the whole batch.
const (
	// TypeBundle carries N small full-file uploads in one frame.
	TypeBundle MsgType = iota + 17
	// TypeBundleReply answers a Bundle with one result per entry, in
	// entry order.
	TypeBundleReply
)

// BundleEntry is one small file inside a Bundle: the same identity an
// IndexUpdate announces (name, raw size, content hash) plus the content
// payload (compressed with the session's comp.Level). The payload rides
// along unconditionally — for files small enough to bundle, probing for
// a dedup hit first would cost the round trip bundling exists to save;
// the server still detects the hit from the hash and simply discards
// the redundant payload.
type BundleEntry struct {
	Name     string
	Size     int64
	FileHash Fingerprint
	Payload  []byte
}

// Bundle coalesces N small full-file uploads into one framed exchange.
type Bundle struct {
	Entries []BundleEntry
}

// Type implements Message.
func (*Bundle) Type() MsgType { return TypeBundle }

// BundleResult reports one entry's commit outcome.
type BundleResult struct {
	FileID   uint64
	Version  uint64
	DedupHit bool
	// OK is false when this entry was rejected (size or hash mismatch,
	// undecodable content); the rest of the bundle still commits.
	OK bool
}

// BundleReply answers a Bundle, one result per entry in entry order.
type BundleReply struct {
	Results []BundleResult
}

// Type implements Message.
func (*BundleReply) Type() MsgType { return TypeBundleReply }

func (m *Bundle) encodeBody(e *encBuf) {
	e.u32(uint32(len(m.Entries)))
	for i := range m.Entries {
		en := &m.Entries[i]
		e.str(en.Name)
		e.i64(en.Size)
		e.raw(en.FileHash[:])
		e.blob(en.Payload)
	}
}

func (m *Bundle) decodeBody(d *decBuf) (err error) {
	n, err := d.u32()
	if err != nil {
		return err
	}
	// Every entry costs at least a name prefix, size, hash, and payload
	// prefix; a count that cannot fit is corruption, not a big bundle.
	if int(n)*(4+8+16+4) > d.remaining() {
		return fmt.Errorf("bundle entry count %d exceeds body", n)
	}
	m.Entries = make([]BundleEntry, n)
	for i := range m.Entries {
		en := &m.Entries[i]
		if en.Name, err = d.str(); err != nil {
			return err
		}
		if en.Size, err = d.i64(); err != nil {
			return err
		}
		if err = d.fingerprint(&en.FileHash); err != nil {
			return err
		}
		if en.Payload, err = d.blob(); err != nil {
			return err
		}
	}
	return nil
}

func (m *BundleReply) encodeBody(e *encBuf) {
	e.u32(uint32(len(m.Results)))
	for _, r := range m.Results {
		e.u64(r.FileID)
		e.u64(r.Version)
		var flags byte
		if r.OK {
			flags |= 1
		}
		if r.DedupHit {
			flags |= 2
		}
		e.u8(flags)
	}
}

func (m *BundleReply) decodeBody(d *decBuf) (err error) {
	n, err := d.u32()
	if err != nil {
		return err
	}
	if int(n)*(8+8+1) > d.remaining() {
		return fmt.Errorf("bundle result count %d exceeds body", n)
	}
	m.Results = make([]BundleResult, n)
	for i := range m.Results {
		r := &m.Results[i]
		if r.FileID, err = d.u64(); err != nil {
			return err
		}
		if r.Version, err = d.u64(); err != nil {
			return err
		}
		flags, err := d.u8()
		if err != nil {
			return err
		}
		r.OK = flags&1 != 0
		r.DedupHit = flags&2 != 0
	}
	return nil
}

// SizeBundleEntry reports the encoded body bytes one bundle entry with
// the given name and payload length contributes — the analytic
// counterpart the ledger's per-entry segmentation relies on.
func SizeBundleEntry(name string, payloadLen int) int {
	return 4 + len(name) + 8 + 16 + 4 + payloadLen
}
