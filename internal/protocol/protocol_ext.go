package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Extended message types used by the live sync service (internal/syncnet):
// content retrieval, rsync-style incremental updates, and error
// reporting.
const (
	// TypeGet requests a file's content by name.
	TypeGet MsgType = iota + 9
	// TypeFileInfo announces a file's metadata ahead of its content.
	TypeFileInfo
	// TypeSigRequest asks the server for the rsync signature of its
	// stored version of a file.
	TypeSigRequest
	// TypeSignature carries an encoded delta.Signature.
	TypeSignature
	// TypeDelta carries an encoded delta.Delta to apply to the server's
	// stored version.
	TypeDelta
	// TypeError reports a failure for the preceding request.
	TypeError
)

// Get requests a file's content.
type Get struct {
	Name string
}

// Type implements Message.
func (*Get) Type() MsgType { return TypeGet }

// FileInfo announces file metadata. Compression names the comp.Level
// the following Data payloads are encoded with.
type FileInfo struct {
	FileID      uint64
	Name        string
	Size        int64
	Version     uint64
	Compression uint8
}

// Type implements Message.
func (*FileInfo) Type() MsgType { return TypeFileInfo }

// SigRequest asks for the signature of the server's stored version.
type SigRequest struct {
	Name string
	// BlockSize is the granularity the client wants (0 = server
	// default).
	BlockSize uint32
}

// Type implements Message.
func (*SigRequest) Type() MsgType { return TypeSigRequest }

// SignatureMsg carries an encoded delta.Signature.
type SignatureMsg struct {
	Name    string
	Payload []byte
}

// Type implements Message.
func (*SignatureMsg) Type() MsgType { return TypeSignature }

// DeltaMsg carries an encoded delta.Delta.
type DeltaMsg struct {
	Name    string
	Payload []byte
}

// Type implements Message.
func (*DeltaMsg) Type() MsgType { return TypeDelta }

// Error reports a failure.
type Error struct {
	Code uint32
	Msg  string
}

// Type implements Message.
func (*Error) Type() MsgType { return TypeError }

// Error codes.
const (
	ErrNotFound uint32 = 1 + iota
	ErrBadRequest
	ErrInternal
)

func (m *Get) encodeBody(b *bytes.Buffer) { putString(b, m.Name) }

func (m *Get) decodeBody(r *bytes.Reader) (err error) {
	m.Name, err = getString(r)
	return err
}

func (m *FileInfo) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
	putString(b, m.Name)
	binary.Write(b, binary.LittleEndian, m.Size)
	binary.Write(b, binary.LittleEndian, m.Version)
	b.WriteByte(m.Compression)
}

func (m *FileInfo) decodeBody(r *bytes.Reader) (err error) {
	if err = binary.Read(r, binary.LittleEndian, &m.FileID); err != nil {
		return err
	}
	if m.Name, err = getString(r); err != nil {
		return err
	}
	if err = binary.Read(r, binary.LittleEndian, &m.Size); err != nil {
		return err
	}
	if err = binary.Read(r, binary.LittleEndian, &m.Version); err != nil {
		return err
	}
	m.Compression, err = r.ReadByte()
	return err
}

func (m *SigRequest) encodeBody(b *bytes.Buffer) {
	putString(b, m.Name)
	binary.Write(b, binary.LittleEndian, m.BlockSize)
}

func (m *SigRequest) decodeBody(r *bytes.Reader) (err error) {
	if m.Name, err = getString(r); err != nil {
		return err
	}
	return binary.Read(r, binary.LittleEndian, &m.BlockSize)
}

func encodeNamedPayload(b *bytes.Buffer, name string, payload []byte) {
	putString(b, name)
	binary.Write(b, binary.LittleEndian, uint32(len(payload)))
	b.Write(payload)
}

func decodeNamedPayload(r *bytes.Reader) (name string, payload []byte, err error) {
	if name, err = getString(r); err != nil {
		return "", nil, err
	}
	var n uint32
	if err = binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", nil, err
	}
	if int(n) > r.Len() {
		return "", nil, fmt.Errorf("payload length %d exceeds body", n)
	}
	payload = make([]byte, n)
	_, err = io.ReadFull(r, payload)
	return name, payload, err
}

func (m *SignatureMsg) encodeBody(b *bytes.Buffer) { encodeNamedPayload(b, m.Name, m.Payload) }

func (m *SignatureMsg) decodeBody(r *bytes.Reader) (err error) {
	m.Name, m.Payload, err = decodeNamedPayload(r)
	return err
}

func (m *DeltaMsg) encodeBody(b *bytes.Buffer) { encodeNamedPayload(b, m.Name, m.Payload) }

func (m *DeltaMsg) decodeBody(r *bytes.Reader) (err error) {
	m.Name, m.Payload, err = decodeNamedPayload(r)
	return err
}

func (m *Error) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.Code)
	putString(b, m.Msg)
}

func (m *Error) decodeBody(r *bytes.Reader) (err error) {
	if err = binary.Read(r, binary.LittleEndian, &m.Code); err != nil {
		return err
	}
	m.Msg, err = getString(r)
	return err
}

// Error implements the error interface so servers can return it
// directly.
func (m *Error) Error() string {
	return fmt.Sprintf("protocol: remote error %d: %s", m.Code, m.Msg)
}
