package protocol

import "fmt"

// Extended message types used by the live sync service (internal/syncnet):
// content retrieval, rsync-style incremental updates, and error
// reporting.
const (
	// TypeGet requests a file's content by name.
	TypeGet MsgType = iota + 9
	// TypeFileInfo announces a file's metadata ahead of its content.
	TypeFileInfo
	// TypeSigRequest asks the server for the rsync signature of its
	// stored version of a file.
	TypeSigRequest
	// TypeSignature carries an encoded delta.Signature.
	TypeSignature
	// TypeDelta carries an encoded delta.Delta to apply to the server's
	// stored version.
	TypeDelta
	// TypeError reports a failure for the preceding request.
	TypeError
)

// Get requests a file's content.
type Get struct {
	Name string
}

// Type implements Message.
func (*Get) Type() MsgType { return TypeGet }

// FileInfo announces file metadata. Compression names the comp.Level
// the following Data payloads are encoded with.
type FileInfo struct {
	FileID      uint64
	Name        string
	Size        int64
	Version     uint64
	Compression uint8
}

// Type implements Message.
func (*FileInfo) Type() MsgType { return TypeFileInfo }

// SigRequest asks for the signature of the server's stored version.
type SigRequest struct {
	Name string
	// BlockSize is the granularity the client wants (0 = server
	// default).
	BlockSize uint32
}

// Type implements Message.
func (*SigRequest) Type() MsgType { return TypeSigRequest }

// SignatureMsg carries an encoded delta.Signature.
type SignatureMsg struct {
	Name    string
	Payload []byte
}

// Type implements Message.
func (*SignatureMsg) Type() MsgType { return TypeSignature }

// DeltaMsg carries an encoded delta.Delta.
type DeltaMsg struct {
	Name    string
	Payload []byte
}

// Type implements Message.
func (*DeltaMsg) Type() MsgType { return TypeDelta }

// Error reports a failure.
type Error struct {
	Code uint32
	Msg  string
}

// Type implements Message.
func (*Error) Type() MsgType { return TypeError }

// Error codes.
const (
	ErrNotFound uint32 = 1 + iota
	ErrBadRequest
	ErrInternal
)

func (m *Get) encodeBody(e *encBuf) { e.str(m.Name) }

func (m *Get) decodeBody(d *decBuf) (err error) {
	m.Name, err = d.str()
	return err
}

func (m *FileInfo) encodeBody(e *encBuf) {
	e.u64(m.FileID)
	e.str(m.Name)
	e.i64(m.Size)
	e.u64(m.Version)
	e.u8(m.Compression)
}

func (m *FileInfo) decodeBody(d *decBuf) (err error) {
	if m.FileID, err = d.u64(); err != nil {
		return err
	}
	if m.Name, err = d.str(); err != nil {
		return err
	}
	if m.Size, err = d.i64(); err != nil {
		return err
	}
	if m.Version, err = d.u64(); err != nil {
		return err
	}
	m.Compression, err = d.u8()
	return err
}

func (m *SigRequest) encodeBody(e *encBuf) {
	e.str(m.Name)
	e.u32(m.BlockSize)
}

func (m *SigRequest) decodeBody(d *decBuf) (err error) {
	if m.Name, err = d.str(); err != nil {
		return err
	}
	m.BlockSize, err = d.u32()
	return err
}

func (m *SignatureMsg) encodeBody(e *encBuf) {
	e.str(m.Name)
	e.blob(m.Payload)
}

func (m *SignatureMsg) decodeBody(d *decBuf) (err error) {
	if m.Name, err = d.str(); err != nil {
		return err
	}
	m.Payload, err = d.blob()
	return err
}

func (m *DeltaMsg) encodeBody(e *encBuf) {
	e.str(m.Name)
	e.blob(m.Payload)
}

func (m *DeltaMsg) decodeBody(d *decBuf) (err error) {
	if m.Name, err = d.str(); err != nil {
		return err
	}
	m.Payload, err = d.blob()
	return err
}

func (m *Error) encodeBody(e *encBuf) {
	e.u32(m.Code)
	e.str(m.Msg)
}

func (m *Error) decodeBody(d *decBuf) (err error) {
	if m.Code, err = d.u32(); err != nil {
		return err
	}
	m.Msg, err = d.str()
	return err
}

// Error implements the error interface so servers can return it
// directly.
func (m *Error) Error() string {
	return fmt.Sprintf("protocol: remote error %d: %s", m.Code, m.Msg)
}
