package protocol

import "fmt"

// Listing message types: the remote-observer half of the watch-mode
// pipeline (internal/watchsync). A client planning a sync round needs
// the server's current view of the namespace — name, size, content
// hash, version, deletion flag per file — so the pure planner can
// reconcile local changes and the confirmed baseline against remote
// reality instead of trusting a possibly stale session cache. One
// ListRequest answers with one Listing; the exchange is metadata
// traffic, the chatter the paper's TUE accounting charges against
// every sync protocol.
const (
	// TypeListRequest asks for the user's full remote file listing.
	TypeListRequest MsgType = iota + 19
	// TypeListing answers a ListRequest with one entry per file the
	// server has ever stored for the user (fake-deleted files included,
	// flagged).
	TypeListing
)

// ListRequest asks for the authenticated user's remote listing.
type ListRequest struct{}

// Type implements Message.
func (*ListRequest) Type() MsgType { return TypeListRequest }

// ListEntry is one file's remote metadata: enough for a planner to
// decide no-op (hash equal), delta (live basis exists), full upload,
// or divergence repair — without downloading any content.
type ListEntry struct {
	FileID  uint64
	Name    string
	Size    int64
	Version uint64
	Deleted bool
	// FileHash is the MD5 of the stored raw content (zero for entries
	// whose content predates hash tracking — callers must treat a zero
	// hash as "unknown", never as "matches").
	FileHash Fingerprint
}

// Listing answers a ListRequest, entries in server (map) order; the
// receiver sorts if it needs determinism.
type Listing struct {
	Entries []ListEntry
}

// Type implements Message.
func (*Listing) Type() MsgType { return TypeListing }

func (m *ListRequest) encodeBody(*encBuf) {}

func (m *ListRequest) decodeBody(*decBuf) error { return nil }

func (m *Listing) encodeBody(e *encBuf) {
	e.u32(uint32(len(m.Entries)))
	for i := range m.Entries {
		en := &m.Entries[i]
		e.u64(en.FileID)
		e.str(en.Name)
		e.i64(en.Size)
		e.u64(en.Version)
		var flags byte
		if en.Deleted {
			flags |= 1
		}
		e.u8(flags)
		e.raw(en.FileHash[:])
	}
}

func (m *Listing) decodeBody(d *decBuf) (err error) {
	n, err := d.u32()
	if err != nil {
		return err
	}
	// Every entry costs at least an ID, a name prefix, a size, a
	// version, a flag byte, and a hash; a count that cannot fit in the
	// remaining body is corruption, not a big listing.
	if int(n)*(8+4+8+8+1+16) > d.remaining() {
		return fmt.Errorf("listing entry count %d exceeds body", n)
	}
	m.Entries = make([]ListEntry, n)
	for i := range m.Entries {
		en := &m.Entries[i]
		if en.FileID, err = d.u64(); err != nil {
			return err
		}
		if en.Name, err = d.str(); err != nil {
			return err
		}
		if en.Size, err = d.i64(); err != nil {
			return err
		}
		if en.Version, err = d.u64(); err != nil {
			return err
		}
		flags, err := d.u8()
		if err != nil {
			return err
		}
		en.Deleted = flags&1 != 0
		if err = d.fingerprint(&en.FileHash); err != nil {
			return err
		}
	}
	return nil
}
