package protocol

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// legacyHello hand-builds the pre-capability Hello frame — type byte,
// body length, three length-prefixed strings, nothing after — exactly
// what a peer without the Caps field puts on the wire.
func legacyHello(user, device, version string) []byte {
	b := []byte{byte(TypeHello), 0, 0, 0, 0}
	for _, s := range []string{user, device, version} {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	binary.LittleEndian.PutUint32(b[1:5], uint32(len(b)-frameHeader))
	return b
}

// TestHelloCapsRoundTrip: a nonzero capability word survives the codec.
func TestHelloCapsRoundTrip(t *testing.T) {
	want := &Hello{User: "alice", Device: "M1", Version: "cloudsync/1", Caps: CapTrace}
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip: got %#v want %#v", got, want)
	}
}

// TestHelloLegacyInterop pins the mixed-version contract in both
// directions: a legacy peer's Hello bytes decode on a new peer with
// Caps zero, and a new peer that advertises nothing encodes bytes a
// legacy decoder would have produced itself — the capability is
// invisible unless claimed.
func TestHelloLegacyInterop(t *testing.T) {
	legacy := legacyHello("alice", "M1", "cloudsync/1")

	// Old bytes, new decoder.
	m, err := Decode(legacy)
	if err != nil {
		t.Fatalf("decoding legacy Hello: %v", err)
	}
	h, ok := m.(*Hello)
	if !ok {
		t.Fatalf("decoded %T, want *Hello", m)
	}
	if h.Caps != 0 {
		t.Fatalf("legacy Hello decoded with Caps %#x, want 0", h.Caps)
	}
	if h.User != "alice" || h.Device != "M1" || h.Version != "cloudsync/1" {
		t.Fatalf("legacy Hello fields corrupted: %#v", h)
	}

	// New encoder, zero caps: byte-identical to the legacy frame.
	if got := Encode(&Hello{User: "alice", Device: "M1", Version: "cloudsync/1"}); !bytes.Equal(got, legacy) {
		t.Fatalf("zero-caps Hello differs from legacy bytes:\n got %x\nwant %x", got, legacy)
	}

	// Advertising a capability appends exactly the 4-byte word.
	capable := Encode(&Hello{User: "alice", Device: "M1", Version: "cloudsync/1", Caps: CapTrace})
	if got, want := len(capable), len(legacy)+4; got != want {
		t.Fatalf("capable Hello is %d bytes, want %d", got, want)
	}
	// Only the trailing word and the length header differ: the body
	// prefix is the legacy body unchanged.
	if !bytes.Equal(capable[frameHeader:len(legacy)], legacy[frameHeader:]) {
		t.Fatalf("capable Hello body prefix differs from legacy body")
	}
}

// TestTraceCtxRoundTrip: the propagation frame survives the codec.
func TestTraceCtxRoundTrip(t *testing.T) {
	want := &TraceCtx{SpanID: 42}
	for i := range want.TraceID {
		want.TraceID[i] = byte(i + 1)
	}
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip: got %#v want %#v", got, want)
	}
	if got, want := EncodedSize(want), frameHeader+16+8; got != want {
		t.Fatalf("TraceCtx encodes to %d bytes, want %d", got, want)
	}
}

// TestTraceCtxCorrupt: a truncated context frame must error, not parse.
func TestTraceCtxCorrupt(t *testing.T) {
	enc := Encode(&TraceCtx{SpanID: 7})
	short := enc[:len(enc)-4]
	binary.LittleEndian.PutUint32(short[1:5], uint32(len(short)-frameHeader))
	if _, err := Decode(short); err == nil {
		t.Fatal("truncated TraceCtx decoded without error")
	}
}
