package protocol

import (
	"bytes"
	"crypto/md5"
	"reflect"
	"testing"
	"testing/quick"
)

func allMessages() []Message {
	return []Message{
		&Hello{User: "alice", Device: "M1", Version: "1.0"},
		&Hello{User: "bob", Device: "M2", Version: "1.1", Caps: CapTrace},
		&TraceCtx{TraceID: [16]byte{1, 2, 3, 4}, SpanID: 99},
		&IndexUpdate{
			FileID: 7, Name: "docs/report.txt", Size: 1 << 20,
			FileHash:  md5.Sum([]byte("content")),
			BlockSize: 4 << 20,
			BlockHashes: []Fingerprint{
				md5.Sum([]byte("b0")), md5.Sum([]byte("b1")),
			},
		},
		&IndexReply{FileID: 7, DedupHit: false, NeedBlocks: []uint32{0, 1, 5}},
		&IndexReply{FileID: 8, DedupHit: true},
		&Data{FileID: 7, Offset: 4096, Payload: []byte("hello world")},
		&Commit{FileID: 7, Version: 3},
		&Ack{FileID: 7, Version: 3, OK: true},
		&Notify{FileID: 7, Version: 3, Name: "docs/report.txt"},
		&Delete{FileID: 9},
		&Bundle{Entries: []BundleEntry{
			{Name: "notes/a.txt", Size: 3, FileHash: md5.Sum([]byte("abc")), Payload: []byte("abc")},
			{Name: "b", Size: 0, FileHash: md5.Sum(nil)},
		}},
		&BundleReply{Results: []BundleResult{
			{FileID: 11, Version: 2, OK: true},
			{FileID: 12, Version: 1, OK: true, DedupHit: true},
			{},
		}},
		&ListRequest{},
		&Listing{Entries: []ListEntry{
			{FileID: 3, Name: "docs/report.txt", Size: 1 << 20, Version: 4,
				FileHash: md5.Sum([]byte("content"))},
			{FileID: 9, Name: "old.bin", Size: 12, Version: 2, Deleted: true},
		}},
		&Listing{},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, m := range allMessages() {
		enc := Encode(m)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: Decode: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Fatalf("%v roundtrip:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

// normalize maps nil and empty slices to a canonical form for
// comparison.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *IndexUpdate:
		if len(v.BlockHashes) == 0 {
			v.BlockHashes = nil
		}
	case *IndexReply:
		if len(v.NeedBlocks) == 0 {
			v.NeedBlocks = nil
		}
	case *Data:
		if len(v.Payload) == 0 {
			v.Payload = nil
		}
	case *Bundle:
		for i := range v.Entries {
			if len(v.Entries[i].Payload) == 0 {
				v.Entries[i].Payload = nil
			}
		}
	case *Listing:
		if len(v.Entries) == 0 {
			v.Entries = nil
		}
	}
	return m
}

// TestListingCorruptEntryCount mirrors the bundle corruption check: a
// forged entry count that cannot fit in the body must fail decoding,
// not allocate.
func TestListingCorruptEntryCount(t *testing.T) {
	enc := Encode(&Listing{Entries: []ListEntry{{FileID: 1, Name: "x"}}})
	enc[frameHeader] = 0xff // entry-count low byte
	if _, err := Decode(enc); err == nil {
		t.Fatal("corrupt listing entry count decoded without error")
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	for _, m := range allMessages() {
		if got, want := EncodedSize(m), len(Encode(m)); got != want {
			t.Errorf("%v: EncodedSize = %d, len(Encode) = %d", m.Type(), got, want)
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, m := range allMessages() {
		if m.Type().String() == "" {
			t.Errorf("type %d has empty name", m.Type())
		}
	}
	if MsgType(99).String() == "" {
		t.Error("unknown type should render")
	}
}

func TestReadMessageFraming(t *testing.T) {
	var stream bytes.Buffer
	for _, m := range allMessages() {
		stream.Write(Encode(m))
	}
	for _, want := range allMessages() {
		got, err := ReadMessage(&stream)
		if err != nil {
			t.Fatalf("ReadMessage: %v", err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("got %v, want %v", got.Type(), want.Type())
		}
	}
	if _, err := ReadMessage(&stream); err == nil {
		t.Fatal("ReadMessage past end should error")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},                      // too short
		{99, 0, 0, 0, 0},         // unknown type
		{1, 10, 0, 0, 0},         // length mismatch
		{1, 1, 0, 0, 0, 0xFF, 0}, // trailing bytes
		append([]byte{2, 4, 0, 0, 0}, 1, 2, 3, 4), // truncated IndexUpdate body
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: Decode succeeded on malformed input", i)
		}
	}
}

func TestDecodeCorruptStringLength(t *testing.T) {
	enc := Encode(&Hello{User: "x"})
	// Corrupt the user-string length to exceed the body.
	enc[5] = 0xFF
	if _, err := Decode(enc); err == nil {
		t.Fatal("corrupt string length not rejected")
	}
}

func TestDecodeCorruptBlockCount(t *testing.T) {
	enc := Encode(&IndexUpdate{Name: "f"})
	// Body layout: fileID(8) nameLen(4)+1 size(8) hash(16) blockSize(4) count(4).
	countOff := 5 + 8 + 4 + 1 + 8 + 16 + 4
	enc[countOff] = 0xFF
	if _, err := Decode(enc); err == nil {
		t.Fatal("corrupt block count not rejected")
	}
}

func TestIndexUpdateSizeGrowsWithBlocks(t *testing.T) {
	small := EncodedSize(&IndexUpdate{Name: "f"})
	big := EncodedSize(&IndexUpdate{Name: "f", BlockHashes: make([]Fingerprint, 100)})
	if big-small != 100*md5.Size {
		t.Fatalf("block hashes cost %d bytes, want %d", big-small, 100*md5.Size)
	}
}

// Property: arbitrary Data messages round-trip.
func TestPropertyDataRoundTrip(t *testing.T) {
	f := func(id uint64, off int64, payload []byte) bool {
		m := &Data{FileID: id, Offset: off, Payload: payload}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		d := got.(*Data)
		return d.FileID == id && d.Offset == off && bytes.Equal(d.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary Hello strings round-trip (including empty and
// unicode).
func TestPropertyHelloRoundTrip(t *testing.T) {
	f := func(user, device, version string) bool {
		m := &Hello{User: user, Device: device, Version: version}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		h := got.(*Hello)
		return h.User == user && h.Device == device && h.Version == version
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestPropertyDecodeRobust(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("Decode panicked")
			}
		}()
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeIndexUpdate(b *testing.B) {
	m := &IndexUpdate{Name: "file", BlockHashes: make([]Fingerprint, 256)}
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}
