package protocol

import (
	"reflect"
	"strings"
	"testing"
)

func extMessages() []Message {
	return []Message{
		&Get{Name: "docs/report.txt"},
		&FileInfo{FileID: 3, Name: "a.bin", Size: 1 << 20, Version: 7, Compression: 2},
		&SigRequest{Name: "a.bin", BlockSize: 8192},
		&SignatureMsg{Name: "a.bin", Payload: []byte{1, 2, 3, 4, 5}},
		&DeltaMsg{Name: "a.bin", Payload: []byte("delta bytes")},
		&Error{Code: ErrNotFound, Msg: "no such file"},
		&ResumeQuery{Name: "a.bin", Size: 4 << 20, FileHash: Fingerprint{9, 8, 7}},
		&ResumeInfo{FileID: 12, Offset: 3 << 20},
	}
}

func TestExtRoundTrip(t *testing.T) {
	for _, m := range extMessages() {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%v roundtrip:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

func TestExtTypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range extMessages() {
		s := m.Type().String()
		if s == "" || strings.HasPrefix(s, "msgtype(") || seen[s] {
			t.Errorf("type %d has bad name %q", m.Type(), s)
		}
		seen[s] = true
	}
}

func TestExtTypesDoNotCollideWithBase(t *testing.T) {
	base := map[MsgType]bool{}
	for _, m := range allMessages() {
		base[m.Type()] = true
	}
	for _, m := range extMessages() {
		if base[m.Type()] {
			t.Errorf("type %d collides with a base message", m.Type())
		}
	}
}

func TestErrorImplementsError(t *testing.T) {
	var err error = &Error{Code: ErrBadRequest, Msg: "nope"}
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestNamedPayloadCorruption(t *testing.T) {
	enc := Encode(&DeltaMsg{Name: "x", Payload: []byte{1, 2, 3}})
	// Corrupt the payload length to exceed the body.
	enc[len(enc)-4-3] = 0xFF
	if _, err := Decode(enc); err == nil {
		t.Fatal("corrupt payload length not rejected")
	}
}

func TestEmptyPayloadRoundTrip(t *testing.T) {
	got, err := Decode(Encode(&SignatureMsg{Name: "empty"}))
	if err != nil {
		t.Fatal(err)
	}
	sig := got.(*SignatureMsg)
	if sig.Name != "empty" || len(sig.Payload) != 0 {
		t.Fatalf("roundtrip = %+v", sig)
	}
}
