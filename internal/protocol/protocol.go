// Package protocol defines the sync-protocol messages a cloud storage
// client and server exchange, with a compact binary encoding.
//
// The simulator mostly needs message *sizes* — they are the application
// payload the wire model frames — but the codec is real: every message
// round-trips through Encode/Decode, so the protocol could serve an
// actual client/server implementation over net.Conn. Message layout is
// a type byte, a uint32 body length, and a fixed-order body using
// little-endian integers and length-prefixed strings.
package protocol

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"io"
)

// MsgType identifies a message.
type MsgType uint8

const (
	// TypeHello opens a session: client identity and capabilities.
	TypeHello MsgType = iota + 1
	// TypeIndexUpdate announces a file version: metadata plus content
	// fingerprints (the "data index" of Fig. 1).
	TypeIndexUpdate
	// TypeIndexReply tells the client what the cloud still needs:
	// nothing (dedup hit), specific blocks, or the full content.
	TypeIndexReply
	// TypeData carries file content bytes (possibly compressed).
	TypeData
	// TypeCommit asks the cloud to finalize a version.
	TypeCommit
	// TypeAck confirms a commit or delete.
	TypeAck
	// TypeNotify is a server push informing other devices of a change.
	TypeNotify
	// TypeDelete requests a (fake) deletion.
	TypeDelete
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeIndexUpdate:
		return "index-update"
	case TypeIndexReply:
		return "index-reply"
	case TypeData:
		return "data"
	case TypeCommit:
		return "commit"
	case TypeAck:
		return "ack"
	case TypeNotify:
		return "notify"
	case TypeDelete:
		return "delete"
	case TypeGet:
		return "get"
	case TypeFileInfo:
		return "file-info"
	case TypeSigRequest:
		return "sig-request"
	case TypeSignature:
		return "signature"
	case TypeDelta:
		return "delta"
	case TypeError:
		return "error"
	case TypeResumeQuery:
		return "resume-query"
	case TypeResumeInfo:
		return "resume-info"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Message is implemented by every protocol message.
type Message interface {
	Type() MsgType
	// encodeBody appends the body encoding.
	encodeBody(*bytes.Buffer)
	// decodeBody parses the body encoding.
	decodeBody(*bytes.Reader) error
}

// Fingerprint matches dedup.Fingerprint (MD5).
type Fingerprint = [md5.Size]byte

// Hello opens a session.
type Hello struct {
	User    string
	Device  string
	Version string
}

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

// IndexUpdate announces one file version.
type IndexUpdate struct {
	FileID   uint64
	Name     string
	Size     int64
	FileHash Fingerprint
	// BlockSize is the dedup block granularity of BlockHashes (0 when
	// only the full-file hash is sent).
	BlockSize   uint32
	BlockHashes []Fingerprint
}

// Type implements Message.
func (*IndexUpdate) Type() MsgType { return TypeIndexUpdate }

// IndexReply answers an IndexUpdate.
type IndexReply struct {
	FileID uint64
	// DedupHit means the cloud already has the full content; no data
	// transfer needed.
	DedupHit bool
	// NeedBlocks lists block indices the cloud is missing (block-level
	// dedup); empty with DedupHit false means send everything.
	NeedBlocks []uint32
}

// Type implements Message.
func (*IndexReply) Type() MsgType { return TypeIndexReply }

// Data carries content bytes.
type Data struct {
	FileID  uint64
	Offset  int64
	Payload []byte
}

// Type implements Message.
func (*Data) Type() MsgType { return TypeData }

// Commit finalizes a version.
type Commit struct {
	FileID  uint64
	Version uint64
}

// Type implements Message.
func (*Commit) Type() MsgType { return TypeCommit }

// Ack confirms an operation.
type Ack struct {
	FileID  uint64
	Version uint64
	OK      bool
}

// Type implements Message.
func (*Ack) Type() MsgType { return TypeAck }

// Notify informs a device that a file changed elsewhere.
type Notify struct {
	FileID  uint64
	Version uint64
	Name    string
}

// Type implements Message.
func (*Notify) Type() MsgType { return TypeNotify }

// Delete requests a fake deletion.
type Delete struct {
	FileID uint64
}

// Type implements Message.
func (*Delete) Type() MsgType { return TypeDelete }

// Encode serializes a message: type byte, uint32 body length, body.
func Encode(m Message) []byte {
	var body bytes.Buffer
	m.encodeBody(&body)
	out := make([]byte, 0, 5+body.Len())
	out = append(out, byte(m.Type()))
	out = binary.LittleEndian.AppendUint32(out, uint32(body.Len()))
	return append(out, body.Bytes()...)
}

// EncodedSize reports len(Encode(m)) without allocating the encoding's
// final copy — the hot path for the simulator's traffic accounting.
func EncodedSize(m Message) int {
	var body bytes.Buffer
	m.encodeBody(&body)
	return 5 + body.Len()
}

// Decode parses one encoded message.
func Decode(data []byte) (Message, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("protocol: short message (%d bytes)", len(data))
	}
	t := MsgType(data[0])
	n := binary.LittleEndian.Uint32(data[1:5])
	if int(n) != len(data)-5 {
		return nil, fmt.Errorf("protocol: body length %d does not match %d remaining bytes", n, len(data)-5)
	}
	var m Message
	switch t {
	case TypeHello:
		m = &Hello{}
	case TypeIndexUpdate:
		m = &IndexUpdate{}
	case TypeIndexReply:
		m = &IndexReply{}
	case TypeData:
		m = &Data{}
	case TypeCommit:
		m = &Commit{}
	case TypeAck:
		m = &Ack{}
	case TypeNotify:
		m = &Notify{}
	case TypeDelete:
		m = &Delete{}
	case TypeGet:
		m = &Get{}
	case TypeFileInfo:
		m = &FileInfo{}
	case TypeSigRequest:
		m = &SigRequest{}
	case TypeSignature:
		m = &SignatureMsg{}
	case TypeDelta:
		m = &DeltaMsg{}
	case TypeError:
		m = &Error{}
	case TypeResumeQuery:
		m = &ResumeQuery{}
	case TypeResumeInfo:
		m = &ResumeInfo{}
	default:
		return nil, fmt.Errorf("protocol: unknown message type %d", t)
	}
	r := bytes.NewReader(data[5:])
	if err := m.decodeBody(r); err != nil {
		return nil, fmt.Errorf("protocol: decoding %v: %w", t, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("protocol: %d trailing bytes after %v", r.Len(), t)
	}
	return m, nil
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	buf := make([]byte, 5+int(n))
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[5:]); err != nil {
		return nil, fmt.Errorf("protocol: reading body: %w", err)
	}
	return Decode(buf)
}

// --- body encodings ---

func putString(b *bytes.Buffer, s string) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	b.Write(tmp[:])
	b.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if int(n) > r.Len() {
		return "", fmt.Errorf("string length %d exceeds %d remaining", n, r.Len())
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (m *Hello) encodeBody(b *bytes.Buffer) {
	putString(b, m.User)
	putString(b, m.Device)
	putString(b, m.Version)
}

func (m *Hello) decodeBody(r *bytes.Reader) (err error) {
	if m.User, err = getString(r); err != nil {
		return err
	}
	if m.Device, err = getString(r); err != nil {
		return err
	}
	m.Version, err = getString(r)
	return err
}

func (m *IndexUpdate) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
	putString(b, m.Name)
	binary.Write(b, binary.LittleEndian, m.Size)
	b.Write(m.FileHash[:])
	binary.Write(b, binary.LittleEndian, m.BlockSize)
	binary.Write(b, binary.LittleEndian, uint32(len(m.BlockHashes)))
	for _, h := range m.BlockHashes {
		b.Write(h[:])
	}
}

func (m *IndexUpdate) decodeBody(r *bytes.Reader) (err error) {
	if err = binary.Read(r, binary.LittleEndian, &m.FileID); err != nil {
		return err
	}
	if m.Name, err = getString(r); err != nil {
		return err
	}
	if err = binary.Read(r, binary.LittleEndian, &m.Size); err != nil {
		return err
	}
	if _, err = io.ReadFull(r, m.FileHash[:]); err != nil {
		return err
	}
	if err = binary.Read(r, binary.LittleEndian, &m.BlockSize); err != nil {
		return err
	}
	var n uint32
	if err = binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n)*md5.Size > r.Len() {
		return fmt.Errorf("block hash count %d exceeds body", n)
	}
	m.BlockHashes = make([]Fingerprint, n)
	for i := range m.BlockHashes {
		if _, err = io.ReadFull(r, m.BlockHashes[i][:]); err != nil {
			return err
		}
	}
	return nil
}

func (m *IndexReply) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
	if m.DedupHit {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	binary.Write(b, binary.LittleEndian, uint32(len(m.NeedBlocks)))
	for _, idx := range m.NeedBlocks {
		binary.Write(b, binary.LittleEndian, idx)
	}
}

func (m *IndexReply) decodeBody(r *bytes.Reader) error {
	if err := binary.Read(r, binary.LittleEndian, &m.FileID); err != nil {
		return err
	}
	flag, err := r.ReadByte()
	if err != nil {
		return err
	}
	m.DedupHit = flag == 1
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n)*4 > r.Len() {
		return fmt.Errorf("need-block count %d exceeds body", n)
	}
	m.NeedBlocks = make([]uint32, n)
	for i := range m.NeedBlocks {
		if err := binary.Read(r, binary.LittleEndian, &m.NeedBlocks[i]); err != nil {
			return err
		}
	}
	return nil
}

func (m *Data) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
	binary.Write(b, binary.LittleEndian, m.Offset)
	binary.Write(b, binary.LittleEndian, uint32(len(m.Payload)))
	b.Write(m.Payload)
}

func (m *Data) decodeBody(r *bytes.Reader) error {
	if err := binary.Read(r, binary.LittleEndian, &m.FileID); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &m.Offset); err != nil {
		return err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) > r.Len() {
		return fmt.Errorf("payload length %d exceeds body", n)
	}
	m.Payload = make([]byte, n)
	_, err := io.ReadFull(r, m.Payload)
	return err
}

func (m *Commit) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
	binary.Write(b, binary.LittleEndian, m.Version)
}

func (m *Commit) decodeBody(r *bytes.Reader) error {
	if err := binary.Read(r, binary.LittleEndian, &m.FileID); err != nil {
		return err
	}
	return binary.Read(r, binary.LittleEndian, &m.Version)
}

func (m *Ack) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
	binary.Write(b, binary.LittleEndian, m.Version)
	if m.OK {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func (m *Ack) decodeBody(r *bytes.Reader) error {
	if err := binary.Read(r, binary.LittleEndian, &m.FileID); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &m.Version); err != nil {
		return err
	}
	flag, err := r.ReadByte()
	if err != nil {
		return err
	}
	m.OK = flag == 1
	return nil
}

func (m *Notify) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
	binary.Write(b, binary.LittleEndian, m.Version)
	putString(b, m.Name)
}

func (m *Notify) decodeBody(r *bytes.Reader) (err error) {
	if err = binary.Read(r, binary.LittleEndian, &m.FileID); err != nil {
		return err
	}
	if err = binary.Read(r, binary.LittleEndian, &m.Version); err != nil {
		return err
	}
	m.Name, err = getString(r)
	return err
}

func (m *Delete) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
}

func (m *Delete) decodeBody(r *bytes.Reader) error {
	return binary.Read(r, binary.LittleEndian, &m.FileID)
}
