// Package protocol defines the sync-protocol messages a cloud storage
// client and server exchange, with a compact binary encoding.
//
// The simulator mostly needs message *sizes* — they are the application
// payload the wire model frames — but the codec is real: every message
// round-trips through Encode/Decode, so the protocol could serve an
// actual client/server implementation over net.Conn. Message layout is
// a type byte, a uint32 body length, and a fixed-order body using
// little-endian integers and length-prefixed strings.
//
// The codec is allocation-lean by design: encoding appends into a
// caller-supplied buffer (AppendEncode) and decoding slices a byte
// buffer in place, so the live path (internal/syncnet) can frame
// messages through pooled buffers with zero steady-state garbage.
// Only fields that outlive the frame — payload slices, strings —
// are copied out.
package protocol

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// MsgType identifies a message.
type MsgType uint8

const (
	// TypeHello opens a session: client identity and capabilities.
	TypeHello MsgType = iota + 1
	// TypeIndexUpdate announces a file version: metadata plus content
	// fingerprints (the "data index" of Fig. 1).
	TypeIndexUpdate
	// TypeIndexReply tells the client what the cloud still needs:
	// nothing (dedup hit), specific blocks, or the full content.
	TypeIndexReply
	// TypeData carries file content bytes (possibly compressed).
	TypeData
	// TypeCommit asks the cloud to finalize a version.
	TypeCommit
	// TypeAck confirms a commit or delete.
	TypeAck
	// TypeNotify is a server push informing other devices of a change.
	TypeNotify
	// TypeDelete requests a (fake) deletion.
	TypeDelete
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeIndexUpdate:
		return "index-update"
	case TypeIndexReply:
		return "index-reply"
	case TypeData:
		return "data"
	case TypeCommit:
		return "commit"
	case TypeAck:
		return "ack"
	case TypeNotify:
		return "notify"
	case TypeDelete:
		return "delete"
	case TypeGet:
		return "get"
	case TypeFileInfo:
		return "file-info"
	case TypeSigRequest:
		return "sig-request"
	case TypeSignature:
		return "signature"
	case TypeDelta:
		return "delta"
	case TypeError:
		return "error"
	case TypeResumeQuery:
		return "resume-query"
	case TypeResumeInfo:
		return "resume-info"
	case TypeBundle:
		return "bundle"
	case TypeBundleReply:
		return "bundle-reply"
	case TypeListRequest:
		return "list-request"
	case TypeListing:
		return "listing"
	case TypeTraceCtx:
		return "trace-ctx"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Message is implemented by every protocol message.
type Message interface {
	Type() MsgType
	// encodeBody appends the body encoding.
	encodeBody(*encBuf)
	// decodeBody parses the body encoding.
	decodeBody(*decBuf) error
}

// Fingerprint matches dedup.Fingerprint (MD5).
type Fingerprint = [md5.Size]byte

// Capability bits carried in Hello.Caps.
const (
	// CapTrace: the sender can emit and interpret TraceCtx frames
	// (cross-process trace propagation).
	CapTrace uint32 = 1 << 0
)

// Hello opens a session.
type Hello struct {
	User    string
	Device  string
	Version string
	// Caps advertises optional capabilities (Cap* bits). The field is
	// wire-optional: a zero Caps encodes to exactly the legacy Hello
	// bytes, and a legacy Hello decodes with Caps zero — so peers of
	// different versions interoperate unchanged.
	Caps uint32
}

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

// IndexUpdate announces one file version.
type IndexUpdate struct {
	FileID   uint64
	Name     string
	Size     int64
	FileHash Fingerprint
	// BlockSize is the dedup block granularity of BlockHashes (0 when
	// only the full-file hash is sent).
	BlockSize   uint32
	BlockHashes []Fingerprint
}

// Type implements Message.
func (*IndexUpdate) Type() MsgType { return TypeIndexUpdate }

// IndexReply answers an IndexUpdate.
type IndexReply struct {
	FileID uint64
	// DedupHit means the cloud already has the full content; no data
	// transfer needed.
	DedupHit bool
	// NeedBlocks lists block indices the cloud is missing (block-level
	// dedup); empty with DedupHit false means send everything.
	NeedBlocks []uint32
}

// Type implements Message.
func (*IndexReply) Type() MsgType { return TypeIndexReply }

// Data carries content bytes.
type Data struct {
	FileID  uint64
	Offset  int64
	Payload []byte
}

// Type implements Message.
func (*Data) Type() MsgType { return TypeData }

// Commit finalizes a version.
type Commit struct {
	FileID  uint64
	Version uint64
}

// Type implements Message.
func (*Commit) Type() MsgType { return TypeCommit }

// Ack confirms an operation.
type Ack struct {
	FileID  uint64
	Version uint64
	OK      bool
}

// Type implements Message.
func (*Ack) Type() MsgType { return TypeAck }

// Notify informs a device that a file changed elsewhere.
type Notify struct {
	FileID  uint64
	Version uint64
	Name    string
}

// Type implements Message.
func (*Notify) Type() MsgType { return TypeNotify }

// Delete requests a fake deletion.
type Delete struct {
	FileID uint64
}

// Type implements Message.
func (*Delete) Type() MsgType { return TypeDelete }

// --- framing ---

// frameHeader is the per-message envelope: type byte + uint32 body
// length.
const frameHeader = 5

// encBuf is the append-only encoding buffer. All writes are direct
// appends — no interface calls, no reflection — so encoding into a
// pre-sized buffer performs zero allocations.
type encBuf struct{ b []byte }

func (e *encBuf) u8(v byte)    { e.b = append(e.b, v) }
func (e *encBuf) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encBuf) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encBuf) i64(v int64)  { e.u64(uint64(v)) }
func (e *encBuf) raw(p []byte) { e.b = append(e.b, p...) }
func (e *encBuf) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encBuf) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) blob(p []byte) {
	e.u32(uint32(len(p)))
	e.raw(p)
}

// decBuf consumes an encoded body front to back by slicing in place.
// Variable-length fields that outlive the frame (strings, payloads)
// are copied out; everything else is read without allocating.
type decBuf struct{ b []byte }

var errShort = fmt.Errorf("truncated body")

func (d *decBuf) remaining() int { return len(d.b) }

func (d *decBuf) u8() (byte, error) {
	if len(d.b) < 1 {
		return 0, errShort
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *decBuf) u32() (uint32, error) {
	if len(d.b) < 4 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v, nil
}

func (d *decBuf) u64() (uint64, error) {
	if len(d.b) < 8 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v, nil
}

func (d *decBuf) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *decBuf) bool() (bool, error) {
	v, err := d.u8()
	return v == 1, err
}

func (d *decBuf) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(d.b) {
		return "", fmt.Errorf("string length %d exceeds %d remaining", n, len(d.b))
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

// blob reads a uint32-length-prefixed byte slice, copying it out so the
// result survives reuse of the frame buffer.
func (d *decBuf) blob() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > len(d.b) {
		return nil, fmt.Errorf("payload length %d exceeds body", n)
	}
	p := make([]byte, n)
	copy(p, d.b[:n])
	d.b = d.b[n:]
	return p, nil
}

func (d *decBuf) fingerprint(fp *Fingerprint) error {
	if len(d.b) < md5.Size {
		return errShort
	}
	copy(fp[:], d.b[:md5.Size])
	d.b = d.b[md5.Size:]
	return nil
}

// encPool recycles the encoder header: &e passed to the encodeBody
// interface method escapes (the callee is unknown to escape analysis),
// which would cost one small heap allocation per encoded message on the
// live path. Pooling makes AppendEncode allocation-free steady-state.
var encPool = sync.Pool{New: func() any { return new(encBuf) }}

// AppendEncode appends m's full frame (type byte, uint32 body length,
// body) to dst and returns the extended slice. With a dst of adequate
// capacity it performs no allocations — the live path's send buffers
// are pooled and reused across messages.
func AppendEncode(dst []byte, m Message) []byte {
	e := encPool.Get().(*encBuf)
	e.b = append(dst, byte(m.Type()), 0, 0, 0, 0)
	start := len(e.b)
	m.encodeBody(e)
	binary.LittleEndian.PutUint32(e.b[start-4:start], uint32(len(e.b)-start))
	out := e.b
	e.b = nil
	encPool.Put(e)
	return out
}

// Encode serializes a message: type byte, uint32 body length, body.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, frameHeader+16), m)
}

// AppendDataHeader appends the frame header and fixed body prefix of a
// Data message whose payload will be written separately: the returned
// header followed by payloadLen payload bytes is byte-for-byte the
// AppendEncode of the equivalent Data message. This is the vectored
// send path — the ~25-byte header comes from a pooled scratch and the
// payload slice goes to the connection directly, so content is never
// copied into a frame buffer.
func AppendDataHeader(dst []byte, fileID uint64, offset int64, payloadLen int) []byte {
	dst = append(dst, byte(TypeData), 0, 0, 0, 0)
	start := len(dst)
	e := encBuf{dst}
	e.u64(fileID)
	e.i64(offset)
	e.u32(uint32(payloadLen))
	binary.LittleEndian.PutUint32(e.b[start-4:start], uint32(len(e.b)-start+payloadLen))
	return e.b
}

var sizeScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// EncodedSize reports len(Encode(m)) without retaining the encoding —
// the hot path for the simulator's traffic accounting goes through the
// analytic Size* helpers instead, but callers composing novel messages
// still need the measured figure.
func EncodedSize(m Message) int {
	bp := sizeScratch.Get().(*[]byte)
	b := AppendEncode((*bp)[:0], m)
	n := len(b)
	*bp = b[:0]
	sizeScratch.Put(bp)
	return n
}

// newMessage returns the empty message struct for a type byte.
func newMessage(t MsgType) (Message, bool) {
	switch t {
	case TypeHello:
		return &Hello{}, true
	case TypeIndexUpdate:
		return &IndexUpdate{}, true
	case TypeIndexReply:
		return &IndexReply{}, true
	case TypeData:
		return &Data{}, true
	case TypeCommit:
		return &Commit{}, true
	case TypeAck:
		return &Ack{}, true
	case TypeNotify:
		return &Notify{}, true
	case TypeDelete:
		return &Delete{}, true
	case TypeGet:
		return &Get{}, true
	case TypeFileInfo:
		return &FileInfo{}, true
	case TypeSigRequest:
		return &SigRequest{}, true
	case TypeSignature:
		return &SignatureMsg{}, true
	case TypeDelta:
		return &DeltaMsg{}, true
	case TypeError:
		return &Error{}, true
	case TypeResumeQuery:
		return &ResumeQuery{}, true
	case TypeResumeInfo:
		return &ResumeInfo{}, true
	case TypeBundle:
		return &Bundle{}, true
	case TypeBundleReply:
		return &BundleReply{}, true
	case TypeListRequest:
		return &ListRequest{}, true
	case TypeListing:
		return &Listing{}, true
	case TypeTraceCtx:
		return &TraceCtx{}, true
	default:
		return nil, false
	}
}

// Decode parses one encoded message.
func Decode(data []byte) (Message, error) {
	if len(data) < frameHeader {
		return nil, fmt.Errorf("protocol: short message (%d bytes)", len(data))
	}
	t := MsgType(data[0])
	n := binary.LittleEndian.Uint32(data[1:5])
	if int(n) != len(data)-frameHeader {
		return nil, fmt.Errorf("protocol: body length %d does not match %d remaining bytes", n, len(data)-frameHeader)
	}
	m, ok := newMessage(t)
	if !ok {
		return nil, fmt.Errorf("protocol: unknown message type %d", t)
	}
	// Pooled for the same reason as encPool: &d escapes through the
	// decodeBody interface call, and the live path decodes per message.
	d := decPool.Get().(*decBuf)
	d.b = data[frameHeader:]
	err := m.decodeBody(d)
	rest := d.remaining()
	d.b = nil
	decPool.Put(d)
	if err != nil {
		return nil, fmt.Errorf("protocol: decoding %v: %w", t, err)
	}
	if rest != 0 {
		return nil, fmt.Errorf("protocol: %d trailing bytes after %v", rest, t)
	}
	return m, nil
}

var decPool = sync.Pool{New: func() any { return new(decBuf) }}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (Message, error) {
	m, _, err := ReadMessageBuf(r, nil)
	return m, err
}

// ReadMessageBuf reads one framed message from r through buf, growing
// it as needed, and returns the (possibly re-allocated) buffer for the
// caller to reuse on the next read. Decoded messages copy out any
// fields that reference the frame, so the buffer is free for reuse the
// moment ReadMessageBuf returns — a session that recycles its read
// buffer pays one allocation per *session*, not per message (plus the
// unavoidable copies of payload-bearing fields).
func ReadMessageBuf(r io.Reader, buf []byte) (Message, []byte, error) {
	if cap(buf) < frameHeader {
		buf = make([]byte, 0, 4096)
	}
	hdr := buf[:frameHeader]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:5]))
	total := frameHeader + n
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		buf = grown
	}
	buf = buf[:total]
	if _, err := io.ReadFull(r, buf[frameHeader:]); err != nil {
		return nil, buf, fmt.Errorf("protocol: reading body: %w", err)
	}
	m, err := Decode(buf)
	return m, buf, err
}

// --- body encodings ---

func (m *Hello) encodeBody(e *encBuf) {
	e.str(m.User)
	e.str(m.Device)
	e.str(m.Version)
	// Caps is a trailing optional field: omitted when zero so a
	// capability-free Hello stays byte-identical to the legacy form.
	if m.Caps != 0 {
		e.u32(m.Caps)
	}
}

func (m *Hello) decodeBody(d *decBuf) (err error) {
	if m.User, err = d.str(); err != nil {
		return err
	}
	if m.Device, err = d.str(); err != nil {
		return err
	}
	if m.Version, err = d.str(); err != nil {
		return err
	}
	m.Caps = 0
	if d.remaining() > 0 {
		m.Caps, err = d.u32()
	}
	return err
}

func (m *IndexUpdate) encodeBody(e *encBuf) {
	e.u64(m.FileID)
	e.str(m.Name)
	e.i64(m.Size)
	e.raw(m.FileHash[:])
	e.u32(m.BlockSize)
	e.u32(uint32(len(m.BlockHashes)))
	for _, h := range m.BlockHashes {
		e.raw(h[:])
	}
}

func (m *IndexUpdate) decodeBody(d *decBuf) (err error) {
	if m.FileID, err = d.u64(); err != nil {
		return err
	}
	if m.Name, err = d.str(); err != nil {
		return err
	}
	if m.Size, err = d.i64(); err != nil {
		return err
	}
	if err = d.fingerprint(&m.FileHash); err != nil {
		return err
	}
	if m.BlockSize, err = d.u32(); err != nil {
		return err
	}
	n, err := d.u32()
	if err != nil {
		return err
	}
	if int(n)*md5.Size > d.remaining() {
		return fmt.Errorf("block hash count %d exceeds body", n)
	}
	m.BlockHashes = make([]Fingerprint, n)
	for i := range m.BlockHashes {
		if err = d.fingerprint(&m.BlockHashes[i]); err != nil {
			return err
		}
	}
	return nil
}

func (m *IndexReply) encodeBody(e *encBuf) {
	e.u64(m.FileID)
	e.bool(m.DedupHit)
	e.u32(uint32(len(m.NeedBlocks)))
	for _, idx := range m.NeedBlocks {
		e.u32(idx)
	}
}

func (m *IndexReply) decodeBody(d *decBuf) (err error) {
	if m.FileID, err = d.u64(); err != nil {
		return err
	}
	if m.DedupHit, err = d.bool(); err != nil {
		return err
	}
	n, err := d.u32()
	if err != nil {
		return err
	}
	if int(n)*4 > d.remaining() {
		return fmt.Errorf("need-block count %d exceeds body", n)
	}
	m.NeedBlocks = make([]uint32, n)
	for i := range m.NeedBlocks {
		if m.NeedBlocks[i], err = d.u32(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Data) encodeBody(e *encBuf) {
	e.u64(m.FileID)
	e.i64(m.Offset)
	e.blob(m.Payload)
}

func (m *Data) decodeBody(d *decBuf) (err error) {
	if m.FileID, err = d.u64(); err != nil {
		return err
	}
	if m.Offset, err = d.i64(); err != nil {
		return err
	}
	m.Payload, err = d.blob()
	return err
}

func (m *Commit) encodeBody(e *encBuf) {
	e.u64(m.FileID)
	e.u64(m.Version)
}

func (m *Commit) decodeBody(d *decBuf) (err error) {
	if m.FileID, err = d.u64(); err != nil {
		return err
	}
	m.Version, err = d.u64()
	return err
}

func (m *Ack) encodeBody(e *encBuf) {
	e.u64(m.FileID)
	e.u64(m.Version)
	e.bool(m.OK)
}

func (m *Ack) decodeBody(d *decBuf) (err error) {
	if m.FileID, err = d.u64(); err != nil {
		return err
	}
	if m.Version, err = d.u64(); err != nil {
		return err
	}
	m.OK, err = d.bool()
	return err
}

func (m *Notify) encodeBody(e *encBuf) {
	e.u64(m.FileID)
	e.u64(m.Version)
	e.str(m.Name)
}

func (m *Notify) decodeBody(d *decBuf) (err error) {
	if m.FileID, err = d.u64(); err != nil {
		return err
	}
	if m.Version, err = d.u64(); err != nil {
		return err
	}
	m.Name, err = d.str()
	return err
}

func (m *Delete) encodeBody(e *encBuf) {
	e.u64(m.FileID)
}

func (m *Delete) decodeBody(d *decBuf) (err error) {
	m.FileID, err = d.u64()
	return err
}
