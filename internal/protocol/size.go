package protocol

import "crypto/md5"

// Analytic message sizes.
//
// The simulator's traffic accounting only needs len(Encode(m)), and the
// hot path builds messages purely to measure them — including throwaway
// fingerprint and block-index slices whose only purpose is to make the
// length prefix come out right. The helpers below compute the same
// sizes arithmetically, with zero allocation. Each helper must equal
// EncodedSize of the corresponding composed message exactly;
// TestAnalyticSizesMatchEncoder pins that equivalence.

// frameOverhead is the type byte plus the uint32 body length.
const frameOverhead = 5

// SizeIndexUpdate reports the encoded size of an IndexUpdate carrying
// the given name and nHashes block fingerprints.
func SizeIndexUpdate(name string, nHashes int) int {
	// FileID + (len-prefixed name) + Size + FileHash + BlockSize +
	// hash count + hashes.
	return frameOverhead + 8 + 4 + len(name) + 8 + md5.Size + 4 + 4 + md5.Size*nHashes
}

// SizeIndexReply reports the encoded size of an IndexReply listing
// nNeed missing block indices.
func SizeIndexReply(nNeed int) int {
	// FileID + dedup-hit flag + index count + indices.
	return frameOverhead + 8 + 1 + 4 + 4*nNeed
}

// SizeCommit reports the encoded size of a Commit.
func SizeCommit() int {
	return frameOverhead + 8 + 8
}

// SizeAck reports the encoded size of an Ack.
func SizeAck() int {
	return frameOverhead + 8 + 8 + 1
}

// SizeNotify reports the encoded size of a Notify carrying the name.
func SizeNotify(name string) int {
	return frameOverhead + 8 + 8 + 4 + len(name)
}

// SizeDelete reports the encoded size of a Delete.
func SizeDelete() int {
	return frameOverhead + 8
}

// SizeGet reports the encoded size of a Get for the name.
func SizeGet(name string) int {
	return frameOverhead + 4 + len(name)
}
