package protocol

import "testing"

// TestAnalyticSizesMatchEncoder pins every Size* helper to the real
// codec: the helper must report exactly len(Encode(m)) for the message
// it models, across the field shapes the sync client composes.
func TestAnalyticSizesMatchEncoder(t *testing.T) {
	names := []string{"", "a", "u/alice/file000123", "日本語ファイル"}
	counts := []int{0, 1, 7, 1024}

	for _, name := range names {
		for _, n := range counts {
			m := &IndexUpdate{Name: name, Size: 123, BlockHashes: make([]Fingerprint, n)}
			if got, want := SizeIndexUpdate(name, n), len(Encode(m)); got != want {
				t.Errorf("SizeIndexUpdate(%q, %d) = %d, want %d", name, n, got, want)
			}
		}
		if got, want := SizeNotify(name), len(Encode(&Notify{FileID: 1, Version: 2, Name: name})); got != want {
			t.Errorf("SizeNotify(%q) = %d, want %d", name, got, want)
		}
		if got, want := SizeGet(name), len(Encode(&Get{Name: name})); got != want {
			t.Errorf("SizeGet(%q) = %d, want %d", name, got, want)
		}
	}
	for _, n := range counts {
		m := &IndexReply{NeedBlocks: make([]uint32, n)}
		if got, want := SizeIndexReply(n), len(Encode(m)); got != want {
			t.Errorf("SizeIndexReply(%d) = %d, want %d", n, got, want)
		}
	}
	if got, want := SizeCommit(), len(Encode(&Commit{FileID: 9, Version: 4})); got != want {
		t.Errorf("SizeCommit() = %d, want %d", got, want)
	}
	if got, want := SizeAck(), len(Encode(&Ack{OK: true})); got != want {
		t.Errorf("SizeAck() = %d, want %d", got, want)
	}
	if got, want := SizeDelete(), len(Encode(&Delete{FileID: 3})); got != want {
		t.Errorf("SizeDelete() = %d, want %d", got, want)
	}
}

// BenchmarkSizeIndexUpdate documents why the analytic helpers exist:
// the EncodedSize path allocates a buffer (and the caller a throwaway
// fingerprint slice) per call, the analytic path nothing.
func BenchmarkSizeIndexUpdate(b *testing.B) {
	b.Run("encoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = EncodedSize(&IndexUpdate{
				Name: "u/alice/file000123", Size: 4096,
				BlockHashes: make([]Fingerprint, 16),
			})
		}
	})
	b.Run("analytic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = SizeIndexUpdate("u/alice/file000123", 16)
		}
	})
}
