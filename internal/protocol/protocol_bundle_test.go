package protocol

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"testing"
)

func sampleBundle(n int) *Bundle {
	b := &Bundle{Entries: make([]BundleEntry, n)}
	for i := range b.Entries {
		payload := bytes.Repeat([]byte{byte(i)}, 64+i)
		b.Entries[i] = BundleEntry{
			Name:     fmt.Sprintf("dir/file-%03d.txt", i),
			Size:     int64(len(payload)),
			FileHash: md5.Sum(payload),
			Payload:  payload,
		}
	}
	return b
}

func TestSizeBundleEntryMatchesEncoding(t *testing.T) {
	b := sampleBundle(5)
	want := len(Encode(b))
	got := frameHeader + 4 // frame + entry count
	for _, en := range b.Entries {
		got += SizeBundleEntry(en.Name, len(en.Payload))
	}
	if got != want {
		t.Fatalf("sum of SizeBundleEntry = %d, encoded frame = %d", got, want)
	}
}

func TestBundleCorruptEntryCount(t *testing.T) {
	enc := Encode(sampleBundle(2))
	// Body starts with the u32 entry count; inflate it far past what the
	// body could hold.
	binary.LittleEndian.PutUint32(enc[frameHeader:], 1<<30)
	if _, err := Decode(enc); err == nil {
		t.Fatal("inflated bundle entry count not rejected")
	}
}

func TestBundleCorruptPayloadLength(t *testing.T) {
	enc := Encode(&Bundle{Entries: []BundleEntry{{Name: "a", Size: 1, Payload: []byte{1}}}})
	// Entry layout after the count: nameLen(4) name(1) size(8) hash(16)
	// payloadLen(4). Corrupt the payload length.
	off := frameHeader + 4 + 4 + 1 + 8 + 16
	binary.LittleEndian.PutUint32(enc[off:], 1<<20)
	if _, err := Decode(enc); err == nil {
		t.Fatal("inflated bundle payload length not rejected")
	}
}

func TestBundleReplyCorruptResultCount(t *testing.T) {
	enc := Encode(&BundleReply{Results: []BundleResult{{OK: true}}})
	binary.LittleEndian.PutUint32(enc[frameHeader:], 1<<30)
	if _, err := Decode(enc); err == nil {
		t.Fatal("inflated bundle result count not rejected")
	}
}

func TestAppendDataHeaderMatchesEncode(t *testing.T) {
	payload := []byte("some data piece")
	m := &Data{FileID: 42, Offset: 4096, Payload: payload}
	want := Encode(m)
	hdr := AppendDataHeader(nil, m.FileID, m.Offset, len(payload))
	got := append(append([]byte{}, hdr...), payload...)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendDataHeader + payload:\n got %x\nwant %x", got, want)
	}
}

// BenchmarkAppendEncode proves the live path's claim: encoding into a
// buffer with capacity performs zero allocations per message.
func BenchmarkAppendEncode(b *testing.B) {
	m := &IndexUpdate{FileID: 7, Name: "docs/report.txt", Size: 1 << 16,
		FileHash: md5.Sum([]byte("x"))}
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
	if testing.AllocsPerRun(100, func() { buf = AppendEncode(buf[:0], m) }) != 0 {
		b.Fatal("AppendEncode allocated with sufficient capacity")
	}
}

// BenchmarkAppendDataHeader: the vectored-write header costs nothing
// per piece once the scratch buffer exists.
func BenchmarkAppendDataHeader(b *testing.B) {
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendDataHeader(buf[:0], 7, int64(i)<<16, 1<<16)
	}
	if testing.AllocsPerRun(100, func() { buf = AppendDataHeader(buf[:0], 7, 0, 1) }) != 0 {
		b.Fatal("AppendDataHeader allocated with sufficient capacity")
	}
}

// BenchmarkReadMessageBuf measures the steady-state read path: the
// returned buffer feeds the next call, so the frame read itself is
// allocation-free and only the decoded message escapes.
func BenchmarkReadMessageBuf(b *testing.B) {
	frame := Encode(&Commit{FileID: 7, Version: 3})
	r := bytes.NewReader(nil)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var err error
		_, buf, err = ReadMessageBuf(r, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}
