package protocol

// Trace-propagation message type: an opt-in (Hello CapTrace) prefix
// frame carrying the client's trace context, so the server can parent
// its spans under the client operation that caused them.
const (
	// TypeTraceCtx sets the session's current trace context. It stays
	// in effect for every subsequent request until replaced by the next
	// TraceCtx. Servers that advertised CapTrace absorb it silently (no
	// reply, no state mutation beyond the session's trace fields).
	TypeTraceCtx MsgType = iota + 21
)

// TraceCtx names the remote parent of the requests that follow it: the
// client tracer's 128-bit identity plus the span ID of the in-flight
// client operation. A client sends one per operation attempt — cheaper
// than a per-message field, and exactly charged to the ledger's
// framing cause since it carries no user payload.
type TraceCtx struct {
	TraceID [16]byte
	SpanID  uint64
}

// Type implements Message.
func (*TraceCtx) Type() MsgType { return TypeTraceCtx }

func (m *TraceCtx) encodeBody(e *encBuf) {
	e.raw(m.TraceID[:])
	e.u64(m.SpanID)
}

func (m *TraceCtx) decodeBody(d *decBuf) (err error) {
	if err = d.fingerprint(&m.TraceID); err != nil {
		return err
	}
	m.SpanID, err = d.u64()
	return err
}
