package protocol

import (
	"bytes"
	"encoding/binary"
	"io"
)

// Resume message types: after a connection failure mid-upload, a client
// asks the server how much of the interrupted transfer it already holds
// so only the unacknowledged tail is re-sent.
const (
	// TypeResumeQuery asks whether the server holds a partial upload
	// matching the given identity.
	TypeResumeQuery MsgType = iota + 15
	// TypeResumeInfo answers a ResumeQuery with the byte offset the
	// client should continue from.
	TypeResumeInfo
)

// ResumeQuery identifies an interrupted upload by the same triple the
// server stashes partial buffers under: name, final size, and content
// hash. The hash guards against resuming onto a buffer from an older
// edit of the same file.
type ResumeQuery struct {
	Name     string
	Size     int64
	FileHash Fingerprint
}

// Type implements Message.
func (*ResumeQuery) Type() MsgType { return TypeResumeQuery }

// ResumeInfo reports the server's progress on a partial upload. Offset
// is the number of payload bytes already durably received (0 when the
// server holds nothing — the client starts over). FileID is the upload
// handle the continuation Data messages must carry.
type ResumeInfo struct {
	FileID uint64
	Offset int64
}

// Type implements Message.
func (*ResumeInfo) Type() MsgType { return TypeResumeInfo }

func (m *ResumeQuery) encodeBody(b *bytes.Buffer) {
	putString(b, m.Name)
	binary.Write(b, binary.LittleEndian, m.Size)
	b.Write(m.FileHash[:])
}

func (m *ResumeQuery) decodeBody(r *bytes.Reader) (err error) {
	if m.Name, err = getString(r); err != nil {
		return err
	}
	if err = binary.Read(r, binary.LittleEndian, &m.Size); err != nil {
		return err
	}
	_, err = io.ReadFull(r, m.FileHash[:])
	return err
}

func (m *ResumeInfo) encodeBody(b *bytes.Buffer) {
	binary.Write(b, binary.LittleEndian, m.FileID)
	binary.Write(b, binary.LittleEndian, m.Offset)
}

func (m *ResumeInfo) decodeBody(r *bytes.Reader) error {
	if err := binary.Read(r, binary.LittleEndian, &m.FileID); err != nil {
		return err
	}
	return binary.Read(r, binary.LittleEndian, &m.Offset)
}
