package protocol

// Resume message types: after a connection failure mid-upload, a client
// asks the server how much of the interrupted transfer it already holds
// so only the unacknowledged tail is re-sent.
const (
	// TypeResumeQuery asks whether the server holds a partial upload
	// matching the given identity.
	TypeResumeQuery MsgType = iota + 15
	// TypeResumeInfo answers a ResumeQuery with the byte offset the
	// client should continue from.
	TypeResumeInfo
)

// ResumeQuery identifies an interrupted upload by the same triple the
// server stashes partial buffers under: name, final size, and content
// hash. The hash guards against resuming onto a buffer from an older
// edit of the same file.
type ResumeQuery struct {
	Name     string
	Size     int64
	FileHash Fingerprint
}

// Type implements Message.
func (*ResumeQuery) Type() MsgType { return TypeResumeQuery }

// ResumeInfo reports the server's progress on a partial upload. Offset
// is the number of payload bytes already durably received (0 when the
// server holds nothing — the client starts over). FileID is the upload
// handle the continuation Data messages must carry.
type ResumeInfo struct {
	FileID uint64
	Offset int64
}

// Type implements Message.
func (*ResumeInfo) Type() MsgType { return TypeResumeInfo }

func (m *ResumeQuery) encodeBody(e *encBuf) {
	e.str(m.Name)
	e.i64(m.Size)
	e.raw(m.FileHash[:])
}

func (m *ResumeQuery) decodeBody(d *decBuf) (err error) {
	if m.Name, err = d.str(); err != nil {
		return err
	}
	if m.Size, err = d.i64(); err != nil {
		return err
	}
	return d.fingerprint(&m.FileHash)
}

func (m *ResumeInfo) encodeBody(e *encBuf) {
	e.u64(m.FileID)
	e.i64(m.Offset)
}

func (m *ResumeInfo) decodeBody(d *decBuf) (err error) {
	if m.FileID, err = d.u64(); err != nil {
		return err
	}
	m.Offset, err = d.i64()
	return err
}
