package dirwatch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func scan(t *testing.T, w *Watcher) []Change {
	t.Helper()
	changes, err := w.Scan()
	if err != nil {
		t.Fatal(err)
	}
	return changes
}

func TestInitialScanReportsCreates(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.txt", "aaa")
	write(t, dir, "sub/b.txt", "bbbb")
	w, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	changes := scan(t, w)
	if len(changes) != 2 {
		t.Fatalf("changes = %+v", changes)
	}
	if changes[0].Path != "a.txt" || changes[0].Op != Create || changes[0].Size != 3 {
		t.Fatalf("first = %+v", changes[0])
	}
	if changes[1].Path != "sub/b.txt" || changes[1].Size != 4 {
		t.Fatalf("second = %+v", changes[1])
	}
	// Idempotent: nothing changed since.
	if again := scan(t, w); len(again) != 0 {
		t.Fatalf("second scan = %+v", again)
	}
}

func TestModifyDetected(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "f", "one")
	w, _ := New(dir)
	scan(t, w)
	// Different size is detected regardless of mtime granularity.
	write(t, dir, "f", "longer content")
	changes := scan(t, w)
	if len(changes) != 1 || changes[0].Op != Modify || changes[0].Size != 14 {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestModifySameSizeDetectedByMtime(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "f", "abc")
	w, _ := New(dir)
	scan(t, w)
	// Same size, bumped mtime.
	future := time.Now().Add(2 * time.Second)
	write(t, dir, "f", "xyz")
	if err := os.Chtimes(filepath.Join(dir, "f"), future, future); err != nil {
		t.Fatal(err)
	}
	changes := scan(t, w)
	if len(changes) != 1 || changes[0].Op != Modify {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestDeleteDetected(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "f", "abc")
	w, _ := New(dir)
	scan(t, w)
	os.Remove(filepath.Join(dir, "f"))
	changes := scan(t, w)
	if len(changes) != 1 || changes[0].Op != Delete || changes[0].Path != "f" {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestDeletesSortLast(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "old", "abc")
	w, _ := New(dir)
	scan(t, w)
	os.Remove(filepath.Join(dir, "old"))
	write(t, dir, "new", "abc")
	changes := scan(t, w)
	if len(changes) != 2 || changes[0].Op != Create || changes[1].Op != Delete {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestIgnoreFilter(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "keep.txt", "x")
	write(t, dir, "skip.tmp", "x")
	w, _ := New(dir)
	w.Ignore = func(path string) bool { return strings.HasSuffix(path, ".tmp") }
	changes := scan(t, w)
	if len(changes) != 1 || changes[0].Path != "keep.txt" {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestRead(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "sub/f", "content")
	w, _ := New(dir)
	data, err := w.Read("sub/f")
	if err != nil || string(data) != "content" {
		t.Fatalf("Read = %q, %v", data, err)
	}
	if _, err := w.Read("../escape"); err == nil {
		t.Fatal("path traversal not rejected")
	}
	if _, err := w.Read("missing"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("/nonexistent/dir/xyz"); err == nil {
		t.Fatal("missing root should error")
	}
	f := filepath.Join(t.TempDir(), "file")
	os.WriteFile(f, []byte("x"), 0o644)
	if _, err := New(f); err == nil {
		t.Fatal("non-directory root should error")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{Create: "create", Modify: "modify", Delete: "delete"} {
		if op.String() != want {
			t.Fatalf("%d = %q", op, op.String())
		}
	}
	if Op(9).String() == "" {
		t.Fatal("unknown op should render")
	}
}
