// Package dirwatch detects changes in a real directory tree by
// polling, the way early sync clients did: each scan compares every
// file's (size, mtime) against the previous scan and reports creates,
// modifies, and deletes. It is the bridge between an actual filesystem
// and the live sync client of internal/syncnet (see cmd/syncwatch).
package dirwatch

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Op classifies a change.
type Op uint8

const (
	// Create is a new file.
	Create Op = iota
	// Modify is a content change (size or mtime moved).
	Modify
	// Delete is a removed file.
	Delete
)

// String names the op.
func (o Op) String() string {
	switch o {
	case Create:
		return "create"
	case Modify:
		return "modify"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Change is one detected difference.
type Change struct {
	// Path is slash-separated and relative to the watched root.
	Path string
	Op   Op
	Size int64
	// ModTime is the file's modification time as of the scan that
	// observed the change (zero for deletes). Watch-mode deferment
	// policies feed on it: it is the best local evidence of when the
	// write actually happened, independent of how late the poll ran.
	ModTime time.Time
}

type fileState struct {
	size    int64
	modTime time.Time
}

// Watcher polls one directory tree. Not safe for concurrent use.
type Watcher struct {
	root  string
	state map[string]fileState
	// Ignore filters paths (relative, slash-separated); return true to
	// skip. Nil ignores nothing.
	Ignore func(path string) bool
}

// New prepares a watcher rooted at dir. The first Scan reports every
// existing file as a Create.
func New(dir string) (*Watcher, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("dirwatch: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("dirwatch: %s is not a directory", dir)
	}
	return &Watcher{root: dir, state: make(map[string]fileState)}, nil
}

// Root returns the watched directory.
func (w *Watcher) Root() string { return w.root }

// Scan walks the tree once and returns the changes since the previous
// scan, sorted by path (deletes last, so a rename shows as create
// before delete).
func (w *Watcher) Scan() ([]Change, error) {
	seen := make(map[string]fileState)
	err := filepath.WalkDir(w.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A file vanishing mid-walk is an ordinary race; skip it.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(w.root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if w.Ignore != nil && w.Ignore(rel) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		seen[rel] = fileState{size: info.Size(), modTime: info.ModTime()}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dirwatch: scanning %s: %w", w.root, err)
	}

	var changes []Change
	for path, st := range seen {
		prev, ok := w.state[path]
		switch {
		case !ok:
			changes = append(changes, Change{Path: path, Op: Create, Size: st.size, ModTime: st.modTime})
		case prev.size != st.size || !prev.modTime.Equal(st.modTime):
			changes = append(changes, Change{Path: path, Op: Modify, Size: st.size, ModTime: st.modTime})
		}
	}
	for path := range w.state {
		if _, ok := seen[path]; !ok {
			changes = append(changes, Change{Path: path, Op: Delete})
		}
	}
	w.state = seen

	sort.Slice(changes, func(i, j int) bool {
		if (changes[i].Op == Delete) != (changes[j].Op == Delete) {
			return changes[j].Op == Delete
		}
		return changes[i].Path < changes[j].Path
	})
	return changes, nil
}

// Read returns a watched file's content by relative path.
func (w *Watcher) Read(rel string) ([]byte, error) {
	if strings.Contains(rel, "..") {
		return nil, fmt.Errorf("dirwatch: refusing path %q", rel)
	}
	data, err := os.ReadFile(filepath.Join(w.root, filepath.FromSlash(rel)))
	if err != nil {
		return nil, fmt.Errorf("dirwatch: %w", err)
	}
	return data, nil
}
