package vfs

import (
	"testing"

	"cloudsync/internal/chunker"
	"cloudsync/internal/content"
	"cloudsync/internal/simclock"
)

func newFS() *FS { return New(simclock.New()) }

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpCreate: "create", OpModify: "modify", OpDelete: "delete"} {
		if got := op.String(); got != want {
			t.Errorf("%d = %q, want %q", op, got, want)
		}
	}
	if Op(9).String() == "" {
		t.Error("unknown op should render")
	}
}

func TestCreateAndLookup(t *testing.T) {
	fs := newFS()
	if err := fs.Create("a.txt", content.Zeros(100)); err != nil {
		t.Fatal(err)
	}
	f, ok := fs.File("a.txt")
	if !ok {
		t.Fatal("file not found after create")
	}
	if f.Name() != "a.txt" || f.Size() != 100 {
		t.Fatalf("file = %q size %d", f.Name(), f.Size())
	}
	if fs.Len() != 1 {
		t.Fatalf("Len = %d", fs.Len())
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	fs := newFS()
	fs.Create("a", content.Zeros(1))
	if err := fs.Create("a", content.Zeros(1)); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestCreateNilFails(t *testing.T) {
	if err := newFS().Create("a", nil); err == nil {
		t.Fatal("nil content should fail")
	}
}

func TestWriteMissingFails(t *testing.T) {
	if err := newFS().Write("ghost", content.Zeros(1), nil); err == nil {
		t.Fatal("write to missing file should fail")
	}
}

func TestDelete(t *testing.T) {
	fs := newFS()
	fs.Create("a", content.Zeros(1))
	if err := fs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.File("a"); ok {
		t.Fatal("file still present after delete")
	}
	if err := fs.Delete("a"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestWatcherEvents(t *testing.T) {
	fs := newFS()
	var events []Event
	fs.Watch(func(e Event) { events = append(events, e) })
	fs.Create("a", content.Zeros(10))
	fs.Write("a", content.Zeros(20), []chunker.Range{{Off: 10, Len: 10}})
	fs.Delete("a")
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	wantOps := []Op{OpCreate, OpModify, OpDelete}
	for i, e := range events {
		if e.Op != wantOps[i] || e.Name != "a" {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	// Generations strictly increase.
	if !(events[0].Gen < events[1].Gen && events[1].Gen < events[2].Gen) {
		t.Fatalf("generations not increasing: %+v", events)
	}
}

func TestWatchNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Watch(nil) did not panic")
		}
	}()
	newFS().Watch(nil)
}

func TestEditsSinceCreation(t *testing.T) {
	fs := newFS()
	preGen := fs.Gen()
	fs.Create("a", content.Zeros(100))
	f, _ := fs.File("a")
	edits := f.EditsSince(preGen)
	if len(edits) != 1 || edits[0] != (chunker.Range{Off: 0, Len: 100}) {
		t.Fatalf("EditsSince before creation = %v, want whole file", edits)
	}
}

func TestEditsSinceTracksRanges(t *testing.T) {
	fs := newFS()
	fs.Create("a", content.Zeros(1000))
	f, _ := fs.File("a")
	synced := f.Gen()

	fs.Write("a", content.Zeros(1000), []chunker.Range{{Off: 10, Len: 5}})
	fs.Write("a", content.Zeros(1000), []chunker.Range{{Off: 500, Len: 20}})
	edits := f.EditsSince(synced)
	if len(edits) != 2 {
		t.Fatalf("edits = %v, want 2 ranges", edits)
	}
	if edits[0] != (chunker.Range{Off: 10, Len: 5}) || edits[1] != (chunker.Range{Off: 500, Len: 20}) {
		t.Fatalf("edits = %v", edits)
	}
	// After "syncing" at the latest generation, nothing is dirty.
	if rest := f.EditsSince(f.Gen()); len(rest) != 0 {
		t.Fatalf("EditsSince(latest) = %v, want empty", rest)
	}
}

func TestAppendRecordsTailEdit(t *testing.T) {
	fs := newFS()
	fs.Create("log", content.Random(1024, 5))
	f, _ := fs.File("log")
	synced := f.Gen()
	if err := fs.Append("log", 512); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1536 {
		t.Fatalf("size = %d", f.Size())
	}
	edits := f.EditsSince(synced)
	if len(edits) != 1 || edits[0] != (chunker.Range{Off: 1024, Len: 512}) {
		t.Fatalf("edits = %v", edits)
	}
	// Content prefix is preserved (descriptor blob Resize property).
	old := content.Random(1024, 5).Bytes()
	for i, b := range f.Blob().Bytes()[:1024] {
		if b != old[i] {
			t.Fatal("append changed existing content")
		}
	}
}

func TestAppendErrors(t *testing.T) {
	fs := newFS()
	if err := fs.Append("ghost", 1); err == nil {
		t.Fatal("append to missing file should fail")
	}
	fs.Create("a", content.Zeros(1))
	if err := fs.Append("a", -1); err == nil {
		t.Fatal("negative append should fail")
	}
}

func TestModifyByte(t *testing.T) {
	fs := newFS()
	fs.Create("a", content.Random(1000, 7))
	f, _ := fs.File("a")
	synced := f.Gen()
	if err := fs.ModifyByte("a", 555); err != nil {
		t.Fatal(err)
	}
	edits := f.EditsSince(synced)
	if len(edits) != 1 || edits[0] != (chunker.Range{Off: 555, Len: 1}) {
		t.Fatalf("edits = %v", edits)
	}
}

func TestModifyByteLiteralActuallyFlips(t *testing.T) {
	fs := newFS()
	orig := []byte("hello world")
	fs.Create("a", content.FromBytes(append([]byte(nil), orig...)))
	if err := fs.ModifyByte("a", 0); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.File("a")
	if f.Blob().Bytes()[0] == orig[0] {
		t.Fatal("literal byte not flipped")
	}
	if string(f.Blob().Bytes()[1:]) != string(orig[1:]) {
		t.Fatal("other bytes changed")
	}
}

func TestModifyByteBounds(t *testing.T) {
	fs := newFS()
	fs.Create("a", content.Zeros(10))
	if err := fs.ModifyByte("a", 10); err == nil {
		t.Fatal("out-of-range modify should fail")
	}
	if err := fs.ModifyByte("a", -1); err == nil {
		t.Fatal("negative offset should fail")
	}
	if err := fs.ModifyByte("ghost", 0); err == nil {
		t.Fatal("modify of missing file should fail")
	}
}

func TestNamesSorted(t *testing.T) {
	fs := newFS()
	for _, n := range []string{"c", "a", "b"} {
		fs.Create(n, content.Zeros(1))
	}
	names := fs.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("Names = %v", names)
	}
}

func TestEditLogCompaction(t *testing.T) {
	fs := newFS()
	fs.Create("a", content.Random(1<<20, 1))
	f, _ := fs.File("a")
	synced := f.Gen()
	// Far more edits than the compaction threshold.
	for i := 0; i < 2000; i++ {
		fs.Write("a", f.Blob(), []chunker.Range{{Off: int64(i * 100), Len: 10}})
	}
	if len(f.edits) > 600 {
		t.Fatalf("edit log grew to %d entries; compaction failed", len(f.edits))
	}
	// The merged log still reports every dirty range.
	edits := f.EditsSince(synced)
	var total int64
	for _, r := range edits {
		total += r.Len
	}
	if total != 2000*10 {
		t.Fatalf("dirty volume after compaction = %d, want 20000", total)
	}
}

func TestGenMonotone(t *testing.T) {
	fs := newFS()
	prev := fs.Gen()
	fs.Create("a", content.Zeros(1))
	for i := 0; i < 10; i++ {
		fs.Append("a", 1)
		if fs.Gen() <= prev {
			t.Fatal("generation not monotone")
		}
		prev = fs.Gen()
	}
}
