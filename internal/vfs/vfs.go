// Package vfs models the user's local sync folder: the designated
// directory in which "every file operation is noticed and synchronized
// to the cloud by the client software" (Fig. 1 of the paper).
//
// Files carry a content blob and a generation-stamped edit log, so a
// sync client can ask "what byte ranges changed since the generation I
// last synced?" — the information an incremental sync needs — without
// the simulator having to diff content. Watchers receive an event per
// operation, in operation order.
package vfs

import (
	"fmt"
	"sort"
	"time"

	"cloudsync/internal/chunker"
	"cloudsync/internal/content"
	"cloudsync/internal/simclock"
)

// Op is a file operation kind.
type Op uint8

const (
	// OpCreate adds a new file.
	OpCreate Op = iota
	// OpModify replaces or edits file content.
	OpModify
	// OpDelete removes a file.
	OpDelete
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpModify:
		return "modify"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is delivered to watchers for every file operation.
type Event struct {
	Time time.Duration
	Op   Op
	Name string
	// Gen is the filesystem generation of the operation.
	Gen uint64
}

type edit struct {
	gen    uint64
	ranges []chunker.Range
}

// File is one file in the sync folder.
type File struct {
	name    string
	blob    *content.Blob
	gen     uint64 // generation of the latest change
	created uint64 // generation at creation
	edits   []edit
}

// Name returns the file's path within the sync folder.
func (f *File) Name() string { return f.name }

// Blob returns the current content.
func (f *File) Blob() *content.Blob { return f.blob }

// Size returns the current content size.
func (f *File) Size() int64 { return f.blob.Size() }

// Gen returns the generation of the file's latest change.
func (f *File) Gen() uint64 { return f.gen }

// CreatedGen returns the generation at which the file was created.
func (f *File) CreatedGen() uint64 { return f.created }

// EditsSince returns the merged dirty byte ranges of all edits with
// generation > gen. If the file was created after gen, the whole
// current content is dirty.
func (f *File) EditsSince(gen uint64) []chunker.Range {
	if f.created > gen {
		return []chunker.Range{{Off: 0, Len: f.blob.Size()}}
	}
	n, contributing := 0, 0
	var only []chunker.Range
	for _, e := range f.edits {
		if e.gen > gen {
			n += len(e.ranges)
			contributing++
			only = e.ranges
		}
	}
	if contributing == 1 {
		// Stored edits are normalized (addEdit receives Normalize
		// output), so a single contributing edit needs no copy or merge.
		return only
	}
	all := make([]chunker.Range, 0, n)
	for _, e := range f.edits {
		if e.gen > gen {
			all = append(all, e.ranges...)
		}
	}
	return chunker.Normalize(all)
}

// compactThreshold bounds the per-file edit log; beyond it, old entries
// collapse into one normalized entry.
const compactThreshold = 256

func (f *File) addEdit(gen uint64, ranges []chunker.Range) {
	f.edits = append(f.edits, edit{gen: gen, ranges: ranges})
	if len(f.edits) > compactThreshold {
		// Merge the older half into a single entry at its newest
		// generation; EditsSince(g) for g older than that stays exact,
		// and the client never asks about generations inside a burst it
		// hasn't synced.
		half := len(f.edits) / 2
		var merged []chunker.Range
		for _, e := range f.edits[:half] {
			merged = append(merged, e.ranges...)
		}
		compacted := edit{gen: f.edits[half-1].gen, ranges: chunker.Normalize(merged)}
		f.edits = append([]edit{compacted}, f.edits[half:]...)
	}
}

// FS is an in-memory sync folder.
type FS struct {
	clock    *simclock.Clock
	files    map[string]*File
	watchers []func(Event)
	gen      uint64
}

// New returns an empty sync folder on the given clock.
func New(clock *simclock.Clock) *FS {
	if clock == nil {
		panic("vfs: New with nil clock")
	}
	return &FS{clock: clock, files: make(map[string]*File)}
}

// Watch registers a callback invoked synchronously for every operation.
func (fs *FS) Watch(fn func(Event)) {
	if fn == nil {
		panic("vfs: Watch with nil callback")
	}
	fs.watchers = append(fs.watchers, fn)
}

func (fs *FS) notify(op Op, name string, gen uint64) {
	ev := Event{Time: fs.clock.Now(), Op: op, Name: name, Gen: gen}
	for _, w := range fs.watchers {
		w(ev)
	}
}

// Create adds a file. It fails if the name already exists.
func (fs *FS) Create(name string, blob *content.Blob) error {
	if blob == nil {
		return fmt.Errorf("vfs: create %q with nil content", name)
	}
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("vfs: %q already exists", name)
	}
	fs.gen++
	fs.files[name] = &File{name: name, blob: blob, gen: fs.gen, created: fs.gen}
	fs.notify(OpCreate, name, fs.gen)
	return nil
}

// Write replaces the file's content, recording which byte ranges of the
// new content differ from the old (relative to the new layout). A full
// rewrite passes a single range covering the whole blob.
func (fs *FS) Write(name string, blob *content.Blob, changed []chunker.Range) error {
	if blob == nil {
		return fmt.Errorf("vfs: write %q with nil content", name)
	}
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("vfs: %q does not exist", name)
	}
	fs.gen++
	f.blob = blob
	f.gen = fs.gen
	f.addEdit(fs.gen, chunker.Normalize(changed))
	fs.notify(OpModify, name, fs.gen)
	return nil
}

// Append grows a descriptor-backed file by n content-consistent bytes
// (same generator, larger size) — the primitive behind the paper's
// "X KB / X sec" appending experiments. For literal-backed files use
// Write with an explicitly concatenated blob.
func (fs *FS) Append(name string, n int64) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("vfs: %q does not exist", name)
	}
	if n < 0 {
		return fmt.Errorf("vfs: append of %d bytes to %q", n, name)
	}
	old := f.blob.Size()
	grown := f.blob.Resize(old + n)
	return fs.Write(name, grown, []chunker.Range{{Off: old, Len: n}})
}

// ModifyByte flips one byte of the file at the given offset — the
// paper's Experiment 3 primitive. The resulting blob has new content
// identity (so fingerprints change, as a real edit's would) and the
// edit log records the one-byte dirty range.
func (fs *FS) ModifyByte(name string, off int64) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("vfs: %q does not exist", name)
	}
	if off < 0 || off >= f.blob.Size() {
		return fmt.Errorf("vfs: modify offset %d outside %q (%d bytes)", off, name, f.blob.Size())
	}
	return fs.Write(name, f.blob.Mutate(off), []chunker.Range{{Off: off, Len: 1}})
}

// Delete removes a file.
func (fs *FS) Delete(name string) error {
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("vfs: %q does not exist", name)
	}
	delete(fs.files, name)
	fs.gen++
	fs.notify(OpDelete, name, fs.gen)
	return nil
}

// File looks a file up by name.
func (fs *FS) File(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// Names returns the file names in sorted order.
func (fs *FS) Names() []string {
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of files.
func (fs *FS) Len() int { return len(fs.files) }

// Gen reports the filesystem's current generation.
func (fs *FS) Gen() uint64 { return fs.gen }
