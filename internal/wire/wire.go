// Package wire models the framing overhead of the protocol stack that
// commercial cloud storage clients speak: HTTPS over TLS over TCP/IP.
//
// All six services studied in the paper encrypt their application-layer
// data, so the measurement methodology treats the stack below the sync
// protocol as a cost model: every application byte sent also costs HTTP
// headers, TLS record framing, per-segment TCP/IP headers, pure ACKs on
// the reverse path, and — for fresh connections — TCP and TLS
// handshakes. Conn applies that cost model and records the resulting
// packets into a capture.Capture.
package wire

import (
	"time"

	"cloudsync/internal/capture"
	"cloudsync/internal/obs/ledger"
)

// Params describes the framing cost model. DefaultParams returns values
// representative of the 2014-era HTTPS stacks the paper measured.
type Params struct {
	// MSS is the TCP maximum segment size (payload bytes per segment).
	MSS int
	// SegHeader is the per-segment overhead: Ethernet + IP + TCP headers
	// as Wireshark counts them on the wire.
	SegHeader int
	// TLSRecordSize is the maximum plaintext per TLS record.
	TLSRecordSize int
	// TLSRecordOverhead is the per-record framing cost (header + MAC +
	// padding amortised).
	TLSRecordOverhead int
	// HTTPRequestHeader and HTTPResponseHeader approximate the header
	// block sizes of one API request/response pair.
	HTTPRequestHeader  int
	HTTPResponseHeader int
	// TCPHandshakeSegments is the number of empty segments exchanged to
	// open a connection (SYN, SYN-ACK, ACK).
	TCPHandshakeSegments int
	// TLSHandshakeUp and TLSHandshakeDown are the handshake byte costs
	// (ClientHello + key exchange up; ServerHello + certificate chain
	// down).
	TLSHandshakeUp   int
	TLSHandshakeDown int
	// AckEverySegments is how many data segments one pure ACK covers
	// (delayed ACK).
	AckEverySegments int
	// CloseSegments is the FIN/ACK exchange cost in segments, split
	// evenly between directions.
	CloseSegments int
}

// DefaultParams returns the standard cost model used by the experiment
// harness.
func DefaultParams() Params {
	return Params{
		MSS:                  1460,
		SegHeader:            66,
		TLSRecordSize:        16 * 1024,
		TLSRecordOverhead:    29,
		HTTPRequestHeader:    420,
		HTTPResponseHeader:   230,
		TCPHandshakeSegments: 3,
		TLSHandshakeUp:       1310,
		TLSHandshakeDown:     4120,
		AckEverySegments:     2,
		CloseSegments:        4,
	}
}

// FrameSize reports the on-the-wire cost of sending app application
// bytes over an established connection in one direction, and the wire
// size of the pure-ACK traffic it provokes on the reverse path.
// segments is the number of TCP segments used.
func (p Params) FrameSize(app int) (wire, ackWire, segments int) {
	if app < 0 {
		panic("wire: FrameSize with negative size")
	}
	records := (app + p.TLSRecordSize - 1) / p.TLSRecordSize
	if records == 0 {
		records = 1 // even an empty message is one record
	}
	tls := app + records*p.TLSRecordOverhead
	segments = (tls + p.MSS - 1) / p.MSS
	if segments == 0 {
		segments = 1
	}
	wire = tls + segments*p.SegHeader
	acks := (segments + p.AckEverySegments - 1) / p.AckEverySegments
	ackWire = acks * p.SegHeader
	return wire, ackWire, segments
}

// HandshakeRTTs is the number of round trips a fresh HTTPS connection
// costs before the first request can be sent (TCP 3-way + TLS 1.2 full
// handshake).
const HandshakeRTTs = 3

// Conn is a simulated HTTPS connection between a client and the cloud.
// It tracks whether the connection is established and records every
// transmission into the capture.
type Conn struct {
	params Params
	cap    *capture.Capture
	flow   capture.Flow // client→cloud orientation
	open   bool

	// Opens counts how many times the connection was (re)established —
	// visible in tests and in the per-connection-overhead ablation.
	Opens int
}

// NewConn returns a closed connection for the given client→cloud flow.
func NewConn(params Params, cap *capture.Capture, flow capture.Flow) *Conn {
	if cap == nil {
		panic("wire: NewConn with nil capture")
	}
	return &Conn{params: params, cap: cap, flow: flow}
}

// Established reports whether the connection is currently open.
func (c *Conn) Established() bool { return c.open }

// Params returns the cost model in use.
func (c *Conn) Params() Params { return c.params }

// Open establishes the connection if needed, recording TCP and TLS
// handshake traffic stamped at time at. It reports the wire bytes spent
// in each direction (zero if already open).
func (c *Conn) Open(at time.Duration) (up, down int) {
	if c.open {
		return 0, 0
	}
	c.open = true
	c.Opens++
	p := c.params
	// TCP 3-way handshake: SYN up, SYN-ACK down, ACK up.
	upSegs := (p.TCPHandshakeSegments + 1) / 2
	downSegs := p.TCPHandshakeSegments - upSegs
	up = upSegs * p.SegHeader
	down = downSegs * p.SegHeader
	// TLS handshake payloads ride on data segments.
	hsUp, hsUpAck, segsUp := p.FrameSize(p.TLSHandshakeUp)
	hsDown, hsDownAck, segsDown := p.FrameSize(p.TLSHandshakeDown)
	up += hsUp + hsDownAck
	down += hsDown + hsUpAck
	c.cap.Record(capture.Packet{Time: at, Flow: c.flow, Dir: capture.Up,
		Kind: capture.KindHandshake, Wire: up, App: 0, Segments: upSegs + segsUp})
	c.cap.Record(capture.Packet{Time: at, Flow: c.flow.Reverse(), Dir: capture.Down,
		Kind: capture.KindHandshake, Wire: down, App: 0, Segments: downSegs + segsDown})
	return up, down
}

// Request performs one HTTP request/response exchange over the open
// connection: upApp request-body bytes up, downApp response-body bytes
// down, plus headers, TLS records, segment headers, and reverse-path
// ACKs. kind classifies the payload (data vs control). It panics if the
// connection is not established — callers must Open first, so handshake
// costs are never silently omitted. It reports wire bytes per direction.
func (c *Conn) Request(at time.Duration, upApp, downApp int, kind capture.Kind) (up, down int) {
	return c.RequestCause(at, upApp, downApp, kind, ledger.Unset)
}

// RequestCause is Request with an explicit attribution cause for the
// request and response payload bytes (ledger.Unset derives the cause
// from kind). ACK packets always charge to framing.
func (c *Conn) RequestCause(at time.Duration, upApp, downApp int, kind capture.Kind, cause ledger.Cause) (up, down int) {
	if !c.open {
		panic("wire: Request on closed connection")
	}
	p := c.params
	reqWire, reqAck, reqSegs := p.FrameSize(upApp + p.HTTPRequestHeader)
	respWire, respAck, respSegs := p.FrameSize(downApp + p.HTTPResponseHeader)
	c.cap.Record(capture.Packet{Time: at, Flow: c.flow, Dir: capture.Up,
		Kind: kind, Wire: reqWire, App: upApp, Segments: reqSegs, Cause: cause})
	c.cap.Record(capture.Packet{Time: at, Flow: c.flow.Reverse(), Dir: capture.Down,
		Kind: kind, Wire: respWire, App: downApp, Segments: respSegs, Cause: cause})
	if reqAck > 0 {
		c.cap.Record(capture.Packet{Time: at, Flow: c.flow.Reverse(), Dir: capture.Down,
			Kind: capture.KindAck, Wire: reqAck, App: 0, Segments: reqAck / p.SegHeader})
	}
	if respAck > 0 {
		c.cap.Record(capture.Packet{Time: at, Flow: c.flow, Dir: capture.Up,
			Kind: capture.KindAck, Wire: respAck, App: 0, Segments: respAck / p.SegHeader})
	}
	return reqWire + respAck, respWire + reqAck
}

// Send transmits raw application bytes in one direction without HTTP
// request/response semantics — used for custom sync protocols such as
// Ubuntu One's storage protocol and for server push notifications.
func (c *Conn) Send(at time.Duration, app int, dir capture.Direction, kind capture.Kind) (wire int) {
	if !c.open {
		panic("wire: Send on closed connection")
	}
	p := c.params
	w, ack, segs := p.FrameSize(app)
	flow := c.flow
	if dir == capture.Down {
		flow = flow.Reverse()
	}
	c.cap.Record(capture.Packet{Time: at, Flow: flow, Dir: dir, Kind: kind,
		Wire: w, App: app, Segments: segs})
	if ack > 0 {
		rd := capture.Down
		if dir == capture.Down {
			rd = capture.Up
		}
		c.cap.Record(capture.Packet{Time: at, Flow: flow.Reverse(), Dir: rd,
			Kind: capture.KindAck, Wire: ack, App: 0, Segments: ack / p.SegHeader})
	}
	return w
}

// Close tears the connection down, recording the FIN exchange. Closing
// a closed connection is a no-op.
func (c *Conn) Close(at time.Duration) {
	if !c.open {
		return
	}
	c.open = false
	p := c.params
	upSegs := p.CloseSegments / 2
	downSegs := p.CloseSegments - upSegs
	if upSegs > 0 {
		c.cap.Record(capture.Packet{Time: at, Flow: c.flow, Dir: capture.Up,
			Kind: capture.KindHandshake, Wire: upSegs * p.SegHeader, Segments: upSegs})
	}
	if downSegs > 0 {
		c.cap.Record(capture.Packet{Time: at, Flow: c.flow.Reverse(), Dir: capture.Down,
			Kind: capture.KindHandshake, Wire: downSegs * p.SegHeader, Segments: downSegs})
	}
}
