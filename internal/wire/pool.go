package wire

import "sync"

// Live-path frame buffers.
//
// The cost-model half of this package prices framing; this half pools
// it. The live sync stack (internal/syncnet) encodes every protocol
// message into a frame buffer and decodes every received frame out of
// one. Allocating those per message is the dominant steady-state
// garbage of a chatty session, so sessions check a buffer out of a
// shared pool once and reuse it for the session's lifetime: one
// allocation per connection instead of one (or more) per message.

// maxPooledFrame bounds the capacity the pool retains. A session that
// framed a huge delta or bundle would otherwise pin that high-water
// buffer forever; oversized buffers are dropped for the GC instead.
const maxPooledFrame = 1 << 20

var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 8<<10)
	return &b
}}

// GetFrame returns a zero-length frame buffer with capacity at least n,
// reusing a pooled one when available. Return it with PutFrame when the
// session ends.
func GetFrame(n int) []byte {
	bp := framePool.Get().(*[]byte)
	b := *bp
	*bp = nil
	framePool.Put(bp)
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	return b[:0]
}

// PutFrame returns a frame buffer to the pool. Buffers that grew past
// maxPooledFrame are dropped; nil (and zero-capacity) buffers are
// ignored, so PutFrame is safe on every exit path.
func PutFrame(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledFrame {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}
