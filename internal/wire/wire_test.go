package wire

import (
	"testing"
	"testing/quick"

	"cloudsync/internal/capture"
)

var flow = capture.Flow{Src: "client", Dst: "cloud"}

func newConn(c *capture.Capture) *Conn {
	return NewConn(DefaultParams(), c, flow)
}

func TestFrameSizeSmall(t *testing.T) {
	p := DefaultParams()
	wire, ack, segs := p.FrameSize(100)
	if segs != 1 {
		t.Fatalf("segments = %d, want 1", segs)
	}
	if wire != 100+p.TLSRecordOverhead+p.SegHeader {
		t.Fatalf("wire = %d", wire)
	}
	if ack != p.SegHeader {
		t.Fatalf("ack = %d", ack)
	}
}

func TestFrameSizeEmpty(t *testing.T) {
	p := DefaultParams()
	wire, _, segs := p.FrameSize(0)
	if segs != 1 || wire != p.TLSRecordOverhead+p.SegHeader {
		t.Fatalf("empty frame: wire=%d segs=%d", wire, segs)
	}
}

func TestFrameSizeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FrameSize(-1) did not panic")
		}
	}()
	DefaultParams().FrameSize(-1)
}

func TestFrameSizeLarge(t *testing.T) {
	p := DefaultParams()
	app := 1 << 20
	wire, ack, segs := p.FrameSize(app)
	records := (app + p.TLSRecordSize - 1) / p.TLSRecordSize
	wantTLS := app + records*p.TLSRecordOverhead
	wantSegs := (wantTLS + p.MSS - 1) / p.MSS
	if segs != wantSegs {
		t.Fatalf("segments = %d, want %d", segs, wantSegs)
	}
	if wire != wantTLS+segs*p.SegHeader {
		t.Fatalf("wire = %d", wire)
	}
	// Overhead for a 1 MB transfer should be a few percent, not more.
	overhead := float64(wire+ack-app) / float64(app)
	if overhead < 0.03 || overhead > 0.09 {
		t.Fatalf("1MB overhead fraction = %.4f, want ~0.05", overhead)
	}
}

func TestOpenRecordsHandshake(t *testing.T) {
	cap := capture.New()
	c := newConn(cap)
	if c.Established() {
		t.Fatal("new connection should be closed")
	}
	up, down := c.Open(0)
	if !c.Established() {
		t.Fatal("Open did not establish")
	}
	if c.Opens != 1 {
		t.Fatalf("Opens = %d", c.Opens)
	}
	if up <= 0 || down <= 0 {
		t.Fatalf("handshake bytes = (%d,%d)", up, down)
	}
	// TLS cert chain dominates: down should exceed up.
	if down <= up {
		t.Fatalf("handshake down (%d) should exceed up (%d)", down, up)
	}
	if got := cap.KindBytes(capture.KindHandshake); got != int64(up+down) {
		t.Fatalf("handshake capture = %d, want %d", got, up+down)
	}
	// Everything is overhead: no app payload.
	if cap.AppBytes() != 0 {
		t.Fatalf("handshake app bytes = %d", cap.AppBytes())
	}
	// Re-open is free.
	up2, down2 := c.Open(0)
	if up2 != 0 || down2 != 0 || c.Opens != 1 {
		t.Fatal("re-open of established connection should be a no-op")
	}
}

func TestRequestOnClosedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Request on closed conn did not panic")
		}
	}()
	newConn(capture.New()).Request(0, 10, 10, capture.KindData)
}

func TestSendOnClosedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send on closed conn did not panic")
		}
	}()
	newConn(capture.New()).Send(0, 10, capture.Up, capture.KindData)
}

func TestRequestAccounting(t *testing.T) {
	cap := capture.New()
	c := newConn(cap)
	c.Open(0)
	m := cap.Mark()
	up, down := c.Request(0, 1000, 200, capture.KindData)
	gotUp, gotDown, app := cap.Since(m)
	if gotUp != int64(up) || gotDown != int64(down) {
		t.Fatalf("capture (%d,%d) != returned (%d,%d)", gotUp, gotDown, up, down)
	}
	if app != 1200 {
		t.Fatalf("app bytes = %d, want 1200", app)
	}
	if up <= 1000 || down <= 200 {
		t.Fatalf("framing added nothing: up=%d down=%d", up, down)
	}
}

func TestSendDirections(t *testing.T) {
	for _, dir := range []capture.Direction{capture.Up, capture.Down} {
		cap := capture.New()
		c := newConn(cap)
		c.Open(0)
		m := cap.Mark()
		c.Send(0, 5000, dir, capture.KindControl)
		up, down, app := cap.Since(m)
		if app != 5000 {
			t.Fatalf("dir %v: app = %d", dir, app)
		}
		if dir == capture.Up && up <= down {
			t.Fatalf("up send: up=%d down=%d", up, down)
		}
		if dir == capture.Down && down <= up {
			t.Fatalf("down send: up=%d down=%d", up, down)
		}
	}
}

func TestCloseRecordsFin(t *testing.T) {
	cap := capture.New()
	c := newConn(cap)
	c.Open(0)
	before := cap.TotalBytes()
	c.Close(0)
	if c.Established() {
		t.Fatal("Close did not close")
	}
	if cap.TotalBytes() <= before {
		t.Fatal("Close recorded no traffic")
	}
	after := cap.TotalBytes()
	c.Close(0) // double close is a no-op
	if cap.TotalBytes() != after {
		t.Fatal("double Close recorded traffic")
	}
}

func TestReopenCountsHandshakeAgain(t *testing.T) {
	cap := capture.New()
	c := newConn(cap)
	c.Open(0)
	c.Close(0)
	c.Open(0)
	if c.Opens != 2 {
		t.Fatalf("Opens = %d, want 2", c.Opens)
	}
}

func TestNewConnNilCapturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewConn(nil capture) did not panic")
		}
	}()
	NewConn(DefaultParams(), nil, flow)
}

// Property: framing is monotone (more app bytes never costs less wire)
// and overhead per byte shrinks as payload grows.
func TestPropertyFrameMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint32) bool {
		x, y := int(a%(1<<22)), int(b%(1<<22))
		if x > y {
			x, y = y, x
		}
		wx, ax, _ := p.FrameSize(x)
		wy, ay, _ := p.FrameSize(y)
		return wx+ax <= wy+ay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: wire size always ≥ app size, and overhead fraction for
// ≥64 KB payloads stays below 10%.
func TestPropertyOverheadBounds(t *testing.T) {
	p := DefaultParams()
	f := func(a uint32) bool {
		app := int(a % (8 << 20))
		w, ack, _ := p.FrameSize(app)
		if w < app {
			return false
		}
		if app >= 64<<10 {
			frac := float64(w+ack-app) / float64(app)
			return frac < 0.10
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
