package capture

import (
	"testing"
	"testing/quick"
	"time"
)

var testFlow = Flow{Src: "client:M1", Dst: "cloud:dropbox"}

func TestFlowReverse(t *testing.T) {
	r := testFlow.Reverse()
	if r.Src != testFlow.Dst || r.Dst != testFlow.Src {
		t.Fatalf("Reverse() = %v", r)
	}
	if r.Reverse() != testFlow {
		t.Fatal("double Reverse should restore flow")
	}
}

func TestFlowString(t *testing.T) {
	if got := testFlow.String(); got != "client:M1->cloud:dropbox" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDirectionString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" {
		t.Fatal("Direction.String mismatch")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindHandshake: "handshake",
		KindData:      "data",
		KindAck:       "ack",
		KindControl:   "control",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestRecordAccumulates(t *testing.T) {
	c := New()
	c.Record(Packet{Flow: testFlow, Dir: Up, Kind: KindData, Wire: 1500, App: 1400, Segments: 1})
	c.Record(Packet{Flow: testFlow, Dir: Up, Kind: KindControl, Wire: 300, App: 200})
	c.Record(Packet{Flow: testFlow.Reverse(), Dir: Down, Kind: KindAck, Wire: 66, App: 0})

	if got := c.TotalBytes(); got != 1866 {
		t.Fatalf("TotalBytes = %d, want 1866", got)
	}
	if got := c.UpBytes(); got != 1800 {
		t.Fatalf("UpBytes = %d, want 1800", got)
	}
	if got := c.DownBytes(); got != 66 {
		t.Fatalf("DownBytes = %d, want 66", got)
	}
	if got := c.AppBytes(); got != 1600 {
		t.Fatalf("AppBytes = %d, want 1600", got)
	}
	if got := c.OverheadBytes(); got != 266 {
		t.Fatalf("OverheadBytes = %d, want 266", got)
	}
	if got := c.Packets(); got != 3 {
		t.Fatalf("Packets = %d, want 3", got)
	}
	if got := c.KindBytes(KindData); got != 1500 {
		t.Fatalf("KindBytes(data) = %d", got)
	}
	if got := c.KindBytes(KindAck); got != 66 {
		t.Fatalf("KindBytes(ack) = %d", got)
	}
	if got := c.KindBytes(Kind(99)); got != 0 {
		t.Fatalf("KindBytes(unknown) = %d, want 0", got)
	}
}

func TestRecordValidation(t *testing.T) {
	cases := []Packet{
		{Flow: testFlow, Wire: 0, App: 0},
		{Flow: testFlow, Wire: -5, App: 0},
		{Flow: testFlow, Wire: 100, App: 200},
		{Flow: testFlow, Wire: 100, App: -1},
	}
	for i, p := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Record(%+v) did not panic", i, p)
				}
			}()
			New().Record(p)
		}()
	}
}

func TestSegmentsDefaultToOne(t *testing.T) {
	c := New()
	c.Record(Packet{Flow: testFlow, Dir: Up, Wire: 100, App: 50})
	if got := c.Segments(); got != 1 {
		t.Fatalf("Segments = %d, want 1", got)
	}
}

func TestRetention(t *testing.T) {
	c := New()
	c.Record(Packet{Flow: testFlow, Dir: Up, Wire: 100, App: 50})
	if c.Recorded() != nil {
		t.Fatal("non-retaining capture stored packets")
	}
	c.Retain = true
	c.Record(Packet{Time: time.Second, Flow: testFlow, Dir: Up, Kind: KindData, Wire: 200, App: 150})
	got := c.Recorded()
	if len(got) != 1 || got[0].Wire != 200 {
		t.Fatalf("Recorded() = %+v", got)
	}
	data := c.Filter(func(p Packet) bool { return p.Kind == KindData })
	if len(data) != 1 {
		t.Fatalf("Filter found %d packets, want 1", len(data))
	}
	none := c.Filter(func(p Packet) bool { return p.Kind == KindAck })
	if none != nil {
		t.Fatalf("Filter should return nil when nothing matches, got %v", none)
	}
}

func TestFlowStats(t *testing.T) {
	c := New()
	other := Flow{Src: "client:M2", Dst: "cloud:box"}
	c.Record(Packet{Flow: testFlow, Dir: Up, Wire: 100, App: 80})
	c.Record(Packet{Flow: testFlow, Dir: Up, Wire: 50, App: 10})
	c.Record(Packet{Flow: other, Dir: Up, Wire: 7, App: 0})

	fs := c.FlowStats(testFlow)
	if fs.WireBytes != 150 || fs.AppBytes != 90 || fs.Packets != 2 {
		t.Fatalf("FlowStats = %+v", fs)
	}
	if got := c.FlowStats(Flow{Src: "x", Dst: "y"}); got != (DirStats{}) {
		t.Fatalf("unknown flow stats = %+v", got)
	}
	if got := len(c.Flows()); got != 2 {
		t.Fatalf("Flows() returned %d flows, want 2", got)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Retain = true
	c.Record(Packet{Flow: testFlow, Dir: Up, Wire: 100, App: 80})
	c.Reset()
	if c.TotalBytes() != 0 || c.Packets() != 0 || len(c.Recorded()) != 0 || len(c.Flows()) != 0 {
		t.Fatal("Reset did not clear capture")
	}
	if !c.Retain {
		t.Fatal("Reset must keep Retain setting")
	}
}

func TestMarkSince(t *testing.T) {
	c := New()
	c.Record(Packet{Flow: testFlow, Dir: Up, Wire: 100, App: 80})
	m := c.Mark()
	c.Record(Packet{Flow: testFlow, Dir: Up, Wire: 40, App: 30})
	c.Record(Packet{Flow: testFlow.Reverse(), Dir: Down, Wire: 60, App: 20})
	up, down, app := c.Since(m)
	if up != 40 || down != 60 || app != 50 {
		t.Fatalf("Since = (%d,%d,%d), want (40,60,50)", up, down, app)
	}
}

// Property: totals always equal the sum over per-flow stats, and
// overhead is never negative.
func TestPropertyTotalsConsistent(t *testing.T) {
	type rec struct {
		FlowIdx uint8
		Dir     bool
		Wire    uint16
		App     uint16
	}
	flows := []Flow{
		{Src: "a", Dst: "b"}, {Src: "b", Dst: "a"}, {Src: "c", Dst: "d"},
	}
	f := func(recs []rec) bool {
		c := New()
		for _, r := range recs {
			wire := int(r.Wire) + 1
			app := int(r.App)
			if app > wire {
				app = wire
			}
			d := Up
			if r.Dir {
				d = Down
			}
			c.Record(Packet{Flow: flows[int(r.FlowIdx)%len(flows)], Dir: d, Wire: wire, App: app})
		}
		var flowSum int64
		for _, f := range c.Flows() {
			flowSum += c.FlowStats(f).WireBytes
		}
		return flowSum == c.TotalBytes() &&
			c.OverheadBytes() >= 0 &&
			c.UpBytes()+c.DownBytes() == c.TotalBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
