package capture

import (
	"testing"

	"cloudsync/internal/obs/ledger"
)

// TestLedgerChargesEveryWireByte pins the charging rule: App bytes go
// to the packet's effective cause, Wire−App to framing, so the ledger
// total always equals the capture's wire total.
func TestLedgerChargesEveryWireByte(t *testing.T) {
	c := New()
	led := ledger.New()
	c.SetLedger(led)
	f := Flow{Src: "client", Dst: "cloud"}

	c.Record(Packet{Flow: f, Dir: Up, Kind: KindHandshake, Wire: 500})
	c.Record(Packet{Flow: f, Dir: Up, Kind: KindControl, Wire: 300, App: 120})
	c.Record(Packet{Flow: f, Dir: Up, Kind: KindData, Wire: 1100, App: 1000})
	c.Record(Packet{Flow: f, Dir: Up, Kind: KindData, Wire: 90, App: 64, Cause: ledger.Retransmit})
	c.Record(Packet{Flow: f, Dir: Up, Kind: KindControl, Wire: 60, App: 16, Cause: ledger.DedupProbe})
	c.Record(Packet{Flow: f.Reverse(), Dir: Down, Kind: KindAck, Wire: 66})

	if got, want := led.Total(), c.TotalBytes(); got != want {
		t.Fatalf("ledger total %d != capture total %d", got, want)
	}
	checks := []struct {
		cause ledger.Cause
		want  int64
	}{
		{ledger.Metadata, 120},
		{ledger.Payload, 1000},
		{ledger.Retransmit, 64},
		{ledger.DedupProbe, 16},
		// framing = all handshake/ack wire + every packet's Wire−App
		{ledger.Framing, 500 + 66 + (300 - 120) + (1100 - 1000) + (90 - 64) + (60 - 16)},
	}
	for _, ck := range checks {
		if got := led.Get(ck.cause); got != ck.want {
			t.Errorf("%s = %d, want %d", ck.cause, got, ck.want)
		}
	}
}

// TestLedgerDetachAndResetSurvival: Reset clears counters but keeps the
// ledger attached; SetLedger(nil) detaches.
func TestLedgerDetachAndResetSurvival(t *testing.T) {
	c := New()
	led := ledger.New()
	c.SetLedger(led)
	f := Flow{Src: "a", Dst: "b"}
	c.Record(Packet{Flow: f, Dir: Up, Kind: KindData, Wire: 10, App: 10})
	c.Reset()
	if c.Ledger() != led {
		t.Fatal("Reset detached the ledger")
	}
	c.Record(Packet{Flow: f, Dir: Up, Kind: KindData, Wire: 5, App: 5})
	if got := led.Get(ledger.Payload); got != 15 {
		t.Fatalf("Payload = %d, want 15 (ledger is not reset by Capture.Reset)", got)
	}
	c.SetLedger(nil)
	c.Record(Packet{Flow: f, Dir: Up, Kind: KindData, Wire: 5, App: 5})
	if got := led.Get(ledger.Payload); got != 15 {
		t.Fatalf("detached ledger still charged: %d", got)
	}
}
