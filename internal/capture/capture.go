// Package capture is the simulation's packet-capture substrate — the
// stand-in for the Wireshark measurements in the paper.
//
// Actors that put bytes on a simulated link record them here as Packet
// entries carrying both the on-the-wire size and the application payload
// size, so a Capture can answer the two questions every experiment asks:
// how much total sync traffic was used, and how much of it was overhead
// (total − payload). Flows and Endpoints are comparable values usable as
// map keys, following the gopacket model.
package capture

import (
	"fmt"
	"time"

	"cloudsync/internal/obs/ledger"
)

// Endpoint identifies one side of a flow (for example "client:M1" or
// "cloud:dropbox"). Endpoints are comparable and usable as map keys.
type Endpoint string

// Flow is a directed (source, destination) endpoint pair.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the flow with source and destination swapped.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders the flow as "src->dst".
func (f Flow) String() string { return string(f.Src) + "->" + string(f.Dst) }

// Direction classifies traffic relative to the user client, using the
// paper's convention: inbound traffic flows client→cloud (uploads) and
// outbound traffic flows cloud→client (downloads).
type Direction uint8

const (
	// Up is client→cloud ("inbound" in the paper's provider-centric terms).
	Up Direction = iota
	// Down is cloud→client ("outbound").
	Down
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Kind classifies what a packet carries, so overhead can be broken down
// by cause the way § 4.1 of the paper discusses.
type Kind uint8

const (
	// KindHandshake covers TCP/TLS connection establishment and teardown.
	KindHandshake Kind = iota
	// KindData carries file content payload.
	KindData
	// KindAck is a pure transport acknowledgement.
	KindAck
	// KindControl carries sync-protocol messages: index updates, commit
	// requests, notifications, status traffic.
	KindControl
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindHandshake:
		return "handshake"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is one recorded transmission. A Packet may aggregate the
// segments of a single logical message; Segments reports how many wire
// segments it represents.
type Packet struct {
	// Time is the virtual time at which transmission began.
	Time time.Duration
	Flow Flow
	Dir  Direction
	Kind Kind
	// Wire is the total on-the-wire size in bytes, including transport
	// and record-layer framing.
	Wire int
	// App is the application payload carried (file content or protocol
	// message body). Wire − App is framing overhead.
	App int
	// Segments is the number of MSS-sized wire segments aggregated in
	// this entry (≥ 1).
	Segments int
	// Cause attributes the App bytes of this packet when a ledger is
	// attached. ledger.Unset means "derive from Kind": data→payload,
	// control→metadata, handshake/ack→framing.
	Cause ledger.Cause
}

// DirStats accumulates per-direction totals.
type DirStats struct {
	WireBytes int64
	AppBytes  int64
	Packets   int64
	Segments  int64
}

// Capture accumulates traffic statistics and, when Retain is set,
// the individual packets. The zero value is a valid counting-only
// capture.
type Capture struct {
	// Retain stores each recorded Packet for later inspection. Leave it
	// false for long simulations where only totals matter.
	Retain bool

	packets []Packet
	dir     [2]DirStats
	kind    [numKinds]int64
	flows   map[Flow]*DirStats
	led     *ledger.Ledger
}

// SetLedger attaches a traffic-attribution ledger. Every subsequently
// recorded packet charges its App bytes to its (effective) Cause and
// its Wire−App overhead to ledger.Framing, so the ledger's total always
// equals the capture's wire-byte total from the attach point on.
// Reset does not clear or detach the ledger; pass nil to detach.
func (c *Capture) SetLedger(l *ledger.Ledger) { c.led = l }

// Ledger returns the attached ledger, or nil.
func (c *Capture) Ledger() *ledger.Ledger { return c.led }

// effectiveCause resolves a packet's charge cause, defaulting by kind.
func effectiveCause(p Packet) ledger.Cause {
	if p.Cause != ledger.Unset {
		return p.Cause
	}
	switch p.Kind {
	case KindData:
		return ledger.Payload
	case KindControl:
		return ledger.Metadata
	default: // handshake, ack: pure transport
		return ledger.Framing
	}
}

// New returns a counting-only capture. Set Retain before recording to
// keep individual packets.
func New() *Capture { return &Capture{} }

// Record adds one packet to the capture. Packets with non-positive wire
// size or App > Wire panic: they indicate an accounting bug in the
// framing layer.
func (c *Capture) Record(p Packet) {
	if p.Wire <= 0 {
		panic(fmt.Sprintf("capture: Record with Wire=%d", p.Wire))
	}
	if p.App > p.Wire {
		panic(fmt.Sprintf("capture: Record with App=%d > Wire=%d", p.App, p.Wire))
	}
	if p.App < 0 {
		panic(fmt.Sprintf("capture: Record with App=%d", p.App))
	}
	if p.Segments < 1 {
		p.Segments = 1
	}
	if c.Retain {
		c.packets = append(c.packets, p)
	}
	ds := &c.dir[p.Dir]
	ds.WireBytes += int64(p.Wire)
	ds.AppBytes += int64(p.App)
	ds.Packets++
	ds.Segments += int64(p.Segments)
	c.kind[p.Kind] += int64(p.Wire)
	if c.flows == nil {
		c.flows = make(map[Flow]*DirStats)
	}
	fs := c.flows[p.Flow]
	if fs == nil {
		fs = &DirStats{}
		c.flows[p.Flow] = fs
	}
	fs.WireBytes += int64(p.Wire)
	fs.AppBytes += int64(p.App)
	fs.Packets++
	fs.Segments += int64(p.Segments)
	if c.led != nil {
		// App → cause, overhead → framing: each packet contributes
		// exactly Wire bytes, so sum(causes) == TotalBytes by
		// construction.
		c.led.Add(effectiveCause(p), int64(p.App))
		c.led.Add(ledger.Framing, int64(p.Wire-p.App))
	}
}

// TotalBytes reports total wire bytes in both directions — the "total
// data sync traffic" numerator of TUE.
func (c *Capture) TotalBytes() int64 {
	return c.dir[Up].WireBytes + c.dir[Down].WireBytes
}

// UpBytes reports client→cloud wire bytes.
func (c *Capture) UpBytes() int64 { return c.dir[Up].WireBytes }

// DownBytes reports cloud→client wire bytes.
func (c *Capture) DownBytes() int64 { return c.dir[Down].WireBytes }

// AppBytes reports total application payload bytes in both directions.
func (c *Capture) AppBytes() int64 {
	return c.dir[Up].AppBytes + c.dir[Down].AppBytes
}

// OverheadBytes reports total framing-plus-control overhead: wire bytes
// that did not carry file content or protocol message payload.
func (c *Capture) OverheadBytes() int64 { return c.TotalBytes() - c.AppBytes() }

// Packets reports the number of recorded packet entries.
func (c *Capture) Packets() int64 { return c.dir[Up].Packets + c.dir[Down].Packets }

// Segments reports the total number of wire segments.
func (c *Capture) Segments() int64 { return c.dir[Up].Segments + c.dir[Down].Segments }

// Dir returns the accumulated statistics for one direction.
func (c *Capture) Dir(d Direction) DirStats { return c.dir[d] }

// KindBytes reports total wire bytes recorded with the given kind.
func (c *Capture) KindBytes(k Kind) int64 {
	if int(k) >= int(numKinds) {
		return 0
	}
	return c.kind[k]
}

// FlowStats returns the accumulated statistics for one flow, or a zero
// value if the flow was never seen.
func (c *Capture) FlowStats(f Flow) DirStats {
	if fs := c.flows[f]; fs != nil {
		return *fs
	}
	return DirStats{}
}

// Flows returns the set of flows seen, in unspecified order.
func (c *Capture) Flows() []Flow {
	out := make([]Flow, 0, len(c.flows))
	for f := range c.flows {
		out = append(out, f)
	}
	return out
}

// Recorded returns the retained packets. It returns nil unless Retain
// was set before recording.
func (c *Capture) Recorded() []Packet { return c.packets }

// Filter returns the retained packets matching pred. It returns nil
// unless Retain was set.
func (c *Capture) Filter(pred func(Packet) bool) []Packet {
	var out []Packet
	for _, p := range c.packets {
		if pred(p) {
			out = append(out, p)
		}
	}
	return out
}

// Reset clears all counters and retained packets, keeping the Retain
// setting.
func (c *Capture) Reset() {
	c.packets = nil
	c.dir = [2]DirStats{}
	c.kind = [numKinds]int64{}
	c.flows = nil
}

// Mark returns a snapshot of the current totals, usable with Since to
// measure the traffic of one operation inside a longer capture.
func (c *Capture) Mark() Mark {
	return Mark{up: c.dir[Up].WireBytes, down: c.dir[Down].WireBytes,
		appUp: c.dir[Up].AppBytes, appDown: c.dir[Down].AppBytes}
}

// Mark is a totals snapshot; see Capture.Mark.
type Mark struct {
	up, down, appUp, appDown int64
}

// Since reports traffic recorded after the snapshot was taken.
func (c *Capture) Since(m Mark) (up, down, app int64) {
	up = c.dir[Up].WireBytes - m.up
	down = c.dir[Down].WireBytes - m.down
	app = (c.dir[Up].AppBytes - m.appUp) + (c.dir[Down].AppBytes - m.appDown)
	return up, down, app
}
