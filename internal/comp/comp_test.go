package comp

import (
	"bytes"
	"testing"
	"testing/quick"

	"cloudsync/internal/content"
)

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{None: "none", Low: "low", Moderate: "moderate", High: "high"} {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", l, got, want)
		}
	}
	if Level(9).String() == "" {
		t.Error("unknown level should render")
	}
}

func TestNoneIsIdentity(t *testing.T) {
	b := content.Text(100_000, 1)
	if got := Size(b, None); got != b.Size() {
		t.Fatalf("Size(None) = %d, want %d", got, b.Size())
	}
	data := []byte("hello")
	if !bytes.Equal(Compress(data, None), data) {
		t.Fatal("Compress(None) changed data")
	}
	out, err := Decompress(data, None)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatal("Decompress(None) changed data")
	}
}

func TestLevelsMonotone(t *testing.T) {
	b := content.Text(1<<20, 2)
	sNone, sLow, sMod, sHigh := Size(b, None), Size(b, Low), Size(b, Moderate), Size(b, High)
	if !(sHigh < sMod && sMod < sLow && sLow < sNone) {
		t.Fatalf("sizes not monotone: none=%d low=%d mod=%d high=%d", sNone, sLow, sMod, sHigh)
	}
	if sHigh != IdealSize(b) {
		t.Fatalf("High should reach ideal: %d vs %d", sHigh, IdealSize(b))
	}
}

func TestRandomDoesNotExpand(t *testing.T) {
	b := content.Random(1<<20, 3)
	if got := IdealSize(b); got > b.Size() {
		t.Fatalf("IdealSize(random) = %d > size %d", got, b.Size())
	}
	if got := Size(b, High); got > b.Size() {
		t.Fatalf("Size(random, High) = %d > size %d", got, b.Size())
	}
}

func TestZerosCollapse(t *testing.T) {
	b := content.Zeros(1 << 20)
	if got := IdealSize(b); got > b.Size()/100 {
		t.Fatalf("IdealSize(zeros 1MB) = %d, want tiny", got)
	}
}

func TestEmptyBlob(t *testing.T) {
	b := content.FromBytes(nil)
	if IdealSize(b) != 0 {
		t.Fatal("ideal of empty should be 0")
	}
	if EffectivelyCompressible(b) {
		t.Fatal("empty blob should not be effectively compressible")
	}
}

func TestEffectivelyCompressible(t *testing.T) {
	if !EffectivelyCompressible(content.Text(100_000, 4)) {
		t.Fatal("text should be effectively compressible")
	}
	if EffectivelyCompressible(content.Random(100_000, 4)) {
		t.Fatal("random should not be effectively compressible")
	}
}

func TestSamplingMatchesExactForText(t *testing.T) {
	// Bucketed text ratios: a small and a large text blob should report
	// nearly the same ratio.
	exact := content.Text(256<<10, 5)
	sampled := content.Text(16<<20, 5)
	rExact := float64(IdealSize(exact)) / float64(exact.Size())
	rSampled := float64(IdealSize(sampled)) / float64(sampled.Size())
	if diff := rExact - rSampled; diff < -0.05 || diff > 0.05 {
		t.Fatalf("exact ratio %.3f vs sampled ratio %.3f", rExact, rSampled)
	}
}

func TestLiteralSamplingMatchesExact(t *testing.T) {
	// A literal blob above the exact limit is estimated from a prefix;
	// its ratio should track the exact ratio of a same-corpus smaller
	// literal.
	small := content.FromBytes(content.Text(1<<20, 9).Bytes())
	big := content.FromBytes(content.Text(8<<20, 9).Bytes())
	rSmall := float64(IdealSize(small)) / float64(small.Size())
	rBig := float64(IdealSize(big)) / float64(big.Size())
	if diff := rSmall - rBig; diff < -0.05 || diff > 0.05 {
		t.Fatalf("literal exact ratio %.3f vs sampled ratio %.3f", rSmall, rBig)
	}
	if rBig > 0.7 {
		t.Fatalf("sampled literal text ratio = %.3f, want compressible", rBig)
	}
}

func TestDescriptorKindsNeverExpand(t *testing.T) {
	for _, b := range []*content.Blob{
		content.Random(100, 1), content.Text(100, 1), content.Zeros(100),
		content.Text(3, 1), // tiny text: bucket ratio could exceed 1; must clamp
	} {
		if got := IdealSize(b); got > b.Size() {
			t.Errorf("%v: IdealSize %d > size %d", b, got, b.Size())
		}
	}
}

func TestIdealCacheStable(t *testing.T) {
	b := content.Text(1<<20, 6)
	first := IdealSize(b)
	second := IdealSize(content.Text(1<<20, 6))
	if first != second {
		t.Fatalf("cache returned different values: %d vs %d", first, second)
	}
}

func TestTable8Calibration(t *testing.T) {
	// Table 8: a 10 MB text file uploads as ~8.1 MB with mobile (Low),
	// ~5.9 MB with PC (Moderate); downloads at ~5.3 MB (High). Allow a
	// generous band: the shape (Low ≫ Moderate > High) is the finding.
	b := content.Text(10<<20, 7)
	mb := func(n int64) float64 { return float64(n) / (1 << 20) }
	low, mod, high := mb(Size(b, Low)), mb(Size(b, Moderate)), mb(Size(b, High))
	if low < 7.0 || low > 9.0 {
		t.Errorf("Low = %.2f MB, want ≈ 8.1", low)
	}
	if mod < 5.0 || mod > 6.8 {
		t.Errorf("Moderate = %.2f MB, want ≈ 5.9", mod)
	}
	if high < 4.3 || high > 6.0 {
		t.Errorf("High = %.2f MB, want ≈ 5.3", high)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(131, 100); got < 1.30 || got > 1.32 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Ratio(100, 0); got != 1 {
		t.Fatalf("Ratio with zero compressed = %v", got)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	for _, l := range []Level{Low, Moderate, High} {
		data := content.Text(100_000, 8).Bytes()
		c := Compress(data, l)
		if len(c) >= len(data) {
			t.Fatalf("level %v did not compress text (%d → %d)", l, len(data), len(c))
		}
		out, err := Decompress(c, l)
		if err != nil {
			t.Fatalf("level %v: %v", l, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("level %v: roundtrip mismatch", l)
		}
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress([]byte("not flate data"), High); err == nil {
		t.Fatal("Decompress of garbage should error")
	}
}

// Property: for any blob, ideal ≤ level sizes ≤ original, and sizes are
// ordered by level.
func TestPropertySizeBounds(t *testing.T) {
	f := func(sz uint16, seed int64, kindSel uint8) bool {
		size := int64(sz) + 1
		var b *content.Blob
		switch kindSel % 3 {
		case 0:
			b = content.Random(size, seed)
		case 1:
			b = content.Text(size, seed)
		default:
			b = content.Zeros(size)
		}
		ideal := IdealSize(b)
		if ideal > b.Size() {
			return false
		}
		prev := int64(-1)
		for _, l := range []Level{High, Moderate, Low, None} {
			s := Size(b, l)
			if s < ideal || s > b.Size() || s < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIdealSizeSampled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		blob := content.Text(16<<20, int64(i))
		IdealSize(blob)
	}
}
