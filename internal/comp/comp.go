// Package comp is the data-compression subsystem. It plays two roles:
//
//   - A real codec (flate) used by the storage substrate and examples to
//     actually compress and decompress bytes.
//   - An analytic size model used by the simulation: services compress
//     uploads at a *compression level* that is a design choice (§ 5.1 of
//     the paper distinguishes "no", "low" — mobile apps saving battery —
//     "moderate" — PC clients — and "high" — cloud-side recompression),
//     and the simulator needs the resulting sizes without paying for
//     gigabytes of flate work on synthetic content.
//
// The model anchors every level to the blob's *ideal* compressed size
// (best-effort flate, computed exactly for small blobs and by
// deterministic sampling for large descriptor blobs): a level achieves a
// fixed fraction of the ideal size reduction. The fractions are
// calibrated so a 10 MB text file reproduces Table 8's upload sizes.
package comp

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"cloudsync/internal/content"
)

// Level is a data-compression design choice.
type Level uint8

const (
	// None performs no compression (Google Drive, OneDrive, Box,
	// SugarSync on every access method).
	None Level = iota
	// Low is lightweight compression, as mobile clients use to save
	// battery.
	Low
	// Moderate is the default PC-client level.
	Moderate
	// High is best-effort compression, as used on cloud→client downloads.
	High
)

// String names the level.
func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case Low:
		return "low"
	case Moderate:
		return "moderate"
	case High:
		return "high"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// reductionFraction is the share of the ideal size reduction each level
// achieves. Calibrated against Table 8: a 10 MB text file (ideal ≈
// 5.2 MB) uploads as ≈ 8.1 MB on mobile (Low), ≈ 5.9 MB on PC
// (Moderate), and downloads as ≈ 5.3 MB (High).
func (l Level) reductionFraction() float64 {
	switch l {
	case None:
		return 0
	case Low:
		return 0.55
	case Moderate:
		return 0.92
	case High:
		return 1.0
	default:
		panic(fmt.Sprintf("comp: unknown level %d", l))
	}
}

// literalExactLimit is the largest literal (caller-supplied) blob
// whose ideal size is computed by full flate; larger ones are
// estimated from a literalSampleSize prefix. Descriptor blobs never
// reach flate per-blob: random and zero content have closed forms, and
// synthetic text has a uniform ratio measured once per size bucket
// (see textIdeal) — which keeps workloads that churn many text files
// (trace replay) out of the compressor entirely.
const literalExactLimit = 4 << 20

// literalSampleSize is the prefix length compressed to estimate the
// ratio of literal blobs above literalExactLimit.
const literalSampleSize = 1 << 20

var idealCache = struct {
	sync.Mutex
	m map[string]int64
}{m: make(map[string]int64)}

// IdealSize reports the best-effort compressed size of a blob. It never
// exceeds the blob's size: a service that would expand a file stores it
// uncompressed instead. Results are cached by content identity.
func IdealSize(b *content.Blob) int64 {
	if b.Size() == 0 {
		return 0
	}
	// Analytic fast paths for descriptor kinds whose compressibility is
	// known by construction: random data is incompressible (flate would
	// only confirm ≈ 1.0003× and get clamped), and zero runs collapse to
	// roughly a per-kilobyte token. These paths keep append-workload
	// experiments from paying for thousands of flate runs.
	switch b.Kind() {
	case content.KindRandom:
		return b.Size()
	case content.KindZeros:
		return b.Size()/1024 + 64
	case content.KindText:
		// Synthetic text compresses at a ratio that depends only on
		// length (vocabulary and token mix are fixed), so the ratio is
		// measured once per size bucket on a representative blob and
		// reused — workloads that churn many text files never repeat
		// the flate work.
		return textIdeal(b.Size())
	}
	key := b.Identity()
	idealCache.Lock()
	if v, ok := idealCache.m[key]; ok {
		idealCache.Unlock()
		return v
	}
	idealCache.Unlock()

	var ideal int64
	if b.Size() <= literalExactLimit {
		ideal = flateSize(b.Bytes())
	} else {
		// Large literal content: estimate from a prefix sample rather
		// than paying full flate.
		sample := make([]byte, literalSampleSize)
		if _, err := io.ReadFull(b.Reader(), sample); err != nil {
			panic(fmt.Sprintf("comp: sampling %v: %v", b, err))
		}
		ratio := float64(flateSize(sample)) / float64(len(sample))
		ideal = int64(ratio * float64(b.Size()))
	}
	if ideal > b.Size() {
		ideal = b.Size()
	}
	idealCache.Lock()
	idealCache.m[key] = ideal
	idealCache.Unlock()
	return ideal
}

var textRatioCache = struct {
	sync.Mutex
	m map[int]float64
}{m: make(map[int]float64)}

// textIdeal estimates best-effort compressed size for synthetic text
// from a per-size-bucket ratio (buckets are powers of two, capped at
// the sampling size).
func textIdeal(size int64) int64 {
	bucket := 4
	for int64(1)<<bucket < size && bucket < 18 { // cap rep at 256 KiB
		bucket++
	}
	textRatioCache.Lock()
	ratio, ok := textRatioCache.m[bucket]
	textRatioCache.Unlock()
	if !ok {
		rep := content.Text(1<<bucket, 0x7357)
		ratio = float64(flateSize(rep.Bytes())) / float64(rep.Size())
		textRatioCache.Lock()
		textRatioCache.m[bucket] = ratio
		textRatioCache.Unlock()
	}
	ideal := int64(ratio * float64(size))
	if ideal > size {
		ideal = size
	}
	return ideal
}

func flateSize(data []byte) int64 {
	var counter countWriter
	w, err := flate.NewWriter(&counter, flate.BestCompression)
	if err != nil {
		panic(fmt.Sprintf("comp: flate.NewWriter: %v", err))
	}
	if _, err := w.Write(data); err != nil {
		panic(fmt.Sprintf("comp: compress: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("comp: close: %v", err))
	}
	return counter.n
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// Size reports the size of a blob after compression at the given level:
// the blob size minus the level's fraction of the ideal reduction.
func Size(b *content.Blob, l Level) int64 {
	if l == None {
		return b.Size()
	}
	ideal := IdealSize(b)
	reduction := float64(b.Size()-ideal) * l.reductionFraction()
	return b.Size() - int64(reduction)
}

// Ratio reports original/compressed — the paper's "compression ratio"
// (≥ 1 when compression helps). Returns 1 for empty input.
func Ratio(original, compressed int64) float64 {
	if compressed <= 0 {
		return 1
	}
	return float64(original) / float64(compressed)
}

// EffectivelyCompressible applies the paper's § 5.1 criterion: a file is
// effectively compressible when best-effort compression shrinks it below
// 90 % of its original size.
func EffectivelyCompressible(b *content.Blob) bool {
	if b.Size() == 0 {
		return false
	}
	return float64(IdealSize(b))/float64(b.Size()) < 0.90
}

// flateLevel maps a Level to a flate compression level for the real
// codec paths.
func flateLevel(l Level) int {
	switch l {
	case Low:
		return flate.BestSpeed
	case Moderate:
		return 6
	case High:
		return flate.BestCompression
	default:
		panic(fmt.Sprintf("comp: no codec for level %v", l))
	}
}

// Compress really compresses data with the codec corresponding to the
// level. Level None returns the input unchanged.
func Compress(data []byte, l Level) []byte {
	if l == None {
		return data
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flateLevel(l))
	if err != nil {
		panic(fmt.Sprintf("comp: flate.NewWriter: %v", err))
	}
	if _, err := w.Write(data); err != nil {
		panic(fmt.Sprintf("comp: compress: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("comp: close: %v", err))
	}
	return buf.Bytes()
}

// Decompress reverses Compress. Level None returns the input unchanged.
func Decompress(data []byte, l Level) ([]byte, error) {
	if l == None {
		return data, nil
	}
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("comp: decompress: %w", err)
	}
	return out, nil
}
