package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
}

func TestScheduleAdvancesTime(t *testing.T) {
	c := New()
	var fired time.Duration
	c.Schedule(5*time.Second, func() { fired = c.Now() })
	c.Run()
	if fired != 5*time.Second {
		t.Fatalf("event fired at %v, want 5s", fired)
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", c.Now())
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	c := New()
	var order []int
	c.Schedule(3*time.Second, func() { order = append(order, 3) })
	c.Schedule(1*time.Second, func() { order = append(order, 1) })
	c.Schedule(2*time.Second, func() { order = append(order, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsRunFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO for equal timestamps)", i, v, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var times []time.Duration
	c.Schedule(time.Second, func() {
		times = append(times, c.Now())
		c.Schedule(time.Second, func() {
			times = append(times, c.Now())
		})
	})
	c.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times = %v, want [1s 2s]", times)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	c := New()
	c.Schedule(time.Second, func() {
		c.Schedule(-5*time.Second, func() {
			if c.Now() != time.Second {
				t.Errorf("negative delay fired at %v, want 1s", c.Now())
			}
		})
	})
	c.Run()
}

func TestAtInPastClampsToNow(t *testing.T) {
	c := New()
	c.Schedule(10*time.Second, func() {})
	c.Run()
	fired := false
	c.At(time.Second, func() { fired = true })
	c.Run()
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
	if c.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s (clock must not move backwards)", c.Now())
	}
}

func TestTimerStop(t *testing.T) {
	c := New()
	fired := false
	tm := c.Schedule(time.Second, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before Run")
	}
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if tm.Pending() {
		t.Fatal("stopped timer should not be pending")
	}
	c.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	c := New()
	tm := c.Schedule(time.Second, func() {})
	c.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestStopNilTimer(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("Stop on nil timer should report false")
	}
	if tm.Pending() {
		t.Fatal("nil timer should not be pending")
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		c.Schedule(d, func() { fired = append(fired, d) })
	}
	c.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", c.Now())
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", c.Pending())
	}
	// RunUntil with idle queue advances time.
	c.RunUntil(10 * time.Second)
	if c.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s", c.Now())
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d events, want 4", len(fired))
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	c := New()
	if c.Step() {
		t.Fatal("Step on empty clock should report false")
	}
}

func TestPendingSkipsCanceled(t *testing.T) {
	c := New()
	tm := c.Schedule(time.Second, func() {})
	c.Schedule(2*time.Second, func() {})
	tm.Stop()
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	c := New()
	c.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		c.Run()
	})
	c.Run()
}

func TestString(t *testing.T) {
	c := New()
	c.Schedule(time.Second, func() {})
	if s := c.String(); s == "" {
		t.Fatal("String() returned empty")
	}
}

// Property: however events are scheduled, they fire in nondecreasing
// timestamp order and the clock finishes at the maximum timestamp.
func TestPropertyOrderedFiring(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		c := New()
		var fired []time.Duration
		for _, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			c.Schedule(d, func() { fired = append(fired, c.Now()) })
		}
		c.Run()
		if len(fired) != len(delaysMs) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		var max time.Duration
		for _, ms := range delaysMs {
			if d := time.Duration(ms) * time.Millisecond; d > max {
				max = d
			}
		}
		return c.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping a random subset of timers prevents exactly that
// subset from firing.
func TestPropertyStopSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		c := New()
		n := 1 + rng.Intn(40)
		fired := make([]bool, n)
		timers := make([]*Timer, n)
		for i := 0; i < n; i++ {
			i := i
			timers[i] = c.Schedule(time.Duration(rng.Intn(100))*time.Millisecond, func() { fired[i] = true })
		}
		stopped := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				timers[i].Stop()
				stopped[i] = true
			}
		}
		c.Run()
		for i := 0; i < n; i++ {
			if fired[i] == stopped[i] {
				t.Fatalf("iter %d timer %d: fired=%v stopped=%v", iter, i, fired[i], stopped[i])
			}
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New()
		for j := 0; j < 100; j++ {
			c.Schedule(time.Duration(j)*time.Millisecond, func() {})
		}
		c.Run()
	}
}
