// Package simclock implements a deterministic discrete-event scheduler
// with virtual time.
//
// Every actor in a simulation (sync clients, cloud back ends, network
// links) schedules callbacks on a shared *Clock. Time only advances when
// Run (or Step) executes the next pending event, so an experiment that
// spans hours of simulated time completes in microseconds of wall time
// and is bit-for-bit reproducible: events that share a firing time run
// in the order they were scheduled.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a discrete-event virtual clock. The zero value is not usable;
// construct with New.
type Clock struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	// running guards against re-entrant Run calls, which would corrupt
	// the event loop's notion of "current event".
	running bool
}

// New returns a Clock positioned at virtual time zero with no pending
// events.
func New() *Clock {
	return &Clock{}
}

// Now reports the current virtual time as an offset from the simulation
// epoch.
func (c *Clock) Now() time.Duration {
	return c.now
}

// Timer is a handle to a scheduled event. It can be stopped before it
// fires.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the
// event from firing: false means the event already ran or was already
// stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fired {
		return false
	}
	t.ev.canceled = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && !t.ev.fired
}

type event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
	index    int
}

// Schedule arranges for fn to run at Now()+delay. A negative delay is
// treated as zero (fire on the next Step). fn must not be nil.
func (c *Clock) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return c.At(c.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. Scheduling in
// the past is clamped to the present. fn must not be nil.
func (c *Clock) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("simclock: At called with nil function")
	}
	if t < c.now {
		t = c.now
	}
	ev := &event{at: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, ev)
	return &Timer{ev: ev}
}

// Step executes the single earliest pending event, advancing virtual
// time to its firing time. It reports whether an event ran; false means
// the queue was empty.
func (c *Clock) Step() bool {
	for c.events.Len() > 0 {
		ev := heap.Pop(&c.events).(*event)
		if ev.canceled {
			continue
		}
		c.now = ev.at
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// Run executes pending events in timestamp order until none remain.
// Events may schedule further events; Run continues until the queue
// drains. Run panics if called re-entrantly from within an event.
func (c *Clock) Run() {
	if c.running {
		panic("simclock: re-entrant Run")
	}
	c.running = true
	defer func() { c.running = false }()
	for c.Step() {
	}
}

// RunUntil executes pending events with firing times ≤ deadline, then
// advances the clock to deadline (even if idle before it). Events
// scheduled past the deadline remain pending.
func (c *Clock) RunUntil(deadline time.Duration) {
	if c.running {
		panic("simclock: re-entrant RunUntil")
	}
	c.running = true
	defer func() { c.running = false }()
	for {
		ev := c.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// Pending reports the number of scheduled, non-canceled events.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

func (c *Clock) peek() *event {
	for c.events.Len() > 0 {
		ev := c.events[0]
		if ev.canceled {
			heap.Pop(&c.events)
			continue
		}
		return ev
	}
	return nil
}

// String describes the clock state, for debugging.
func (c *Clock) String() string {
	return fmt.Sprintf("simclock(now=%v pending=%d)", c.now, c.Pending())
}

// eventHeap orders events by (firing time, scheduling sequence) so that
// simultaneous events run in FIFO order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
