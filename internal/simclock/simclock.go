// Package simclock implements a deterministic discrete-event scheduler
// with virtual time.
//
// Every actor in a simulation (sync clients, cloud back ends, network
// links) schedules callbacks on a shared *Clock. Time only advances when
// Run (or Step) executes the next pending event, so an experiment that
// spans hours of simulated time completes in microseconds of wall time
// and is bit-for-bit reproducible: events that share a firing time run
// in the order they were scheduled.
//
// The event queue is a hand-rolled binary heap over a slice of event
// values rather than container/heap over pointers: a trace replay
// schedules hundreds of thousands of events, and the value heap makes
// the handle-free Post/PostDelay path allocation-free per event. At and
// Schedule still return a *Timer handle (one small allocation) for
// callers that need cancellation.
package simclock

import (
	"fmt"
	"time"
)

// Clock is a discrete-event virtual clock. The zero value is not usable;
// construct with New.
type Clock struct {
	now    time.Duration
	events []event // binary min-heap ordered by (at, seq)
	seq    uint64
	// running guards against re-entrant Run calls, which would corrupt
	// the event loop's notion of "current event".
	running bool
}

// New returns a Clock positioned at virtual time zero with no pending
// events.
func New() *Clock {
	return &Clock{}
}

// Now reports the current virtual time as an offset from the simulation
// epoch.
func (c *Clock) Now() time.Duration {
	return c.now
}

// Timer is a handle to a scheduled event. It can be stopped before it
// fires.
type Timer struct {
	canceled bool
	fired    bool
}

// Stop cancels the timer. It reports whether the call prevented the
// event from firing: false means the event already ran or was already
// stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.canceled || t.fired {
		return false
	}
	t.canceled = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && !t.canceled && !t.fired
}

// event is one heap entry. timer is nil for handle-free events (Post),
// which is what makes the hot scheduling path allocation-free.
type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	timer *Timer
}

func (e *event) canceled() bool { return e.timer != nil && e.timer.canceled }

// Schedule arranges for fn to run at Now()+delay. A negative delay is
// treated as zero (fire on the next Step). fn must not be nil.
func (c *Clock) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return c.At(c.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. Scheduling in
// the past is clamped to the present. fn must not be nil.
func (c *Clock) At(t time.Duration, fn func()) *Timer {
	tm := &Timer{}
	c.push(t, fn, tm)
	return tm
}

// Post arranges for fn to run at absolute virtual time t, exactly like
// At, but returns no Timer handle and therefore performs no per-event
// allocation — the form the experiment schedulers use when fanning a
// trace's worth of operations onto the clock.
func (c *Clock) Post(t time.Duration, fn func()) {
	c.push(t, fn, nil)
}

// PostDelay is the handle-free form of Schedule: fn runs at Now()+delay.
func (c *Clock) PostDelay(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	c.push(c.now+delay, fn, nil)
}

func (c *Clock) push(t time.Duration, fn func(), tm *Timer) {
	if fn == nil {
		panic("simclock: scheduling a nil function")
	}
	if t < c.now {
		t = c.now
	}
	c.events = append(c.events, event{at: t, seq: c.seq, fn: fn, timer: tm})
	c.seq++
	c.siftUp(len(c.events) - 1)
}

// Step executes the single earliest pending event, advancing virtual
// time to its firing time. It reports whether an event ran; false means
// the queue was empty.
func (c *Clock) Step() bool {
	for len(c.events) > 0 {
		ev := c.pop()
		if ev.canceled() {
			continue
		}
		c.now = ev.at
		if ev.timer != nil {
			ev.timer.fired = true
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes pending events in timestamp order until none remain.
// Events may schedule further events; Run continues until the queue
// drains. Run panics if called re-entrantly from within an event.
func (c *Clock) Run() {
	if c.running {
		panic("simclock: re-entrant Run")
	}
	c.running = true
	defer func() { c.running = false }()
	for c.Step() {
	}
}

// RunUntil executes pending events with firing times ≤ deadline, then
// advances the clock to deadline (even if idle before it). Events
// scheduled past the deadline remain pending.
func (c *Clock) RunUntil(deadline time.Duration) {
	if c.running {
		panic("simclock: re-entrant RunUntil")
	}
	c.running = true
	defer func() { c.running = false }()
	for {
		ev := c.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// Pending reports the number of scheduled, non-canceled events.
func (c *Clock) Pending() int {
	n := 0
	for i := range c.events {
		if !c.events[i].canceled() {
			n++
		}
	}
	return n
}

func (c *Clock) peek() *event {
	for len(c.events) > 0 {
		ev := &c.events[0]
		if ev.canceled() {
			c.pop()
			continue
		}
		return ev
	}
	return nil
}

// String describes the clock state, for debugging.
func (c *Clock) String() string {
	return fmt.Sprintf("simclock(now=%v pending=%d)", c.now, c.Pending())
}

// --- binary min-heap over event values, ordered by (at, seq) ---

func (c *Clock) less(i, j int) bool {
	a, b := &c.events[i], &c.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (c *Clock) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.events[i], c.events[parent] = c.events[parent], c.events[i]
		i = parent
	}
}

func (c *Clock) siftDown(i int) {
	n := len(c.events)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && c.less(r, l) {
			min = r
		}
		if !c.less(min, i) {
			return
		}
		c.events[i], c.events[min] = c.events[min], c.events[i]
		i = min
	}
}

// pop removes and returns the earliest event.
func (c *Clock) pop() event {
	ev := c.events[0]
	n := len(c.events) - 1
	c.events[0] = c.events[n]
	c.events[n] = event{} // release the closure for GC
	c.events = c.events[:n]
	if n > 0 {
		c.siftDown(0)
	}
	return ev
}
