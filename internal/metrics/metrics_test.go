package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero Counter.Value() = %d", c.Value())
	}
	c.Add(5)
	c.Add(7)
	if c.Value() != 12 {
		t.Fatalf("Value() = %d, want 12", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after Reset Value() = %d", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.Count() != 0 || d.Mean() != 0 || d.Median() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty distribution should report zeros")
	}
	if d.CDF(10) != 0 {
		t.Fatal("empty CDF should be 0")
	}
}

func TestDistributionBasics(t *testing.T) {
	var d Distribution
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		d.Add(v)
	}
	if d.Count() != 8 {
		t.Fatalf("Count = %d", d.Count())
	}
	if got := d.Min(); got != 1 {
		t.Fatalf("Min = %v", got)
	}
	if got := d.Max(); got != 9 {
		t.Fatalf("Max = %v", got)
	}
	if got := d.Sum(); got != 31 {
		t.Fatalf("Sum = %v", got)
	}
	if got := d.Mean(); math.Abs(got-3.875) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestDistributionNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(NaN) did not panic")
		}
	}()
	var d Distribution
	d.Add(math.NaN())
}

func TestQuantile(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.77, 77}, {1, 100}, {-1, 1}, {2, 100},
	}
	for _, c := range cases {
		if got := d.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCDF(t *testing.T) {
	var d Distribution
	for _, v := range []float64{1, 2, 2, 3} {
		d.Add(v)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := d.CDF(c.x); got != c.want {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	var d Distribution
	d.AddN(5, 4)
	pts := d.CDFPoints([]float64{4, 5, 6})
	want := []float64{0, 1, 1}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("CDFPoints = %v, want %v", pts, want)
		}
	}
}

func TestAddAfterQueryResorts(t *testing.T) {
	var d Distribution
	d.Add(5)
	if d.Median() != 5 {
		t.Fatal("median of {5} should be 5")
	}
	d.Add(1)
	if got := d.Min(); got != 1 {
		t.Fatalf("Min after re-add = %v, want 1", got)
	}
}

// Property: CDF is monotone nondecreasing and Quantile inverts CDF in
// the nearest-rank sense: CDF(Quantile(p)) ≥ p.
func TestPropertyCDFQuantile(t *testing.T) {
	f := func(raw []float64, pRaw float64) bool {
		var d Distribution
		ok := false
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Add(v)
			ok = true
		}
		if !ok {
			return true
		}
		p := math.Abs(math.Mod(pRaw, 1))
		q := d.Quantile(p)
		return d.CDF(q) >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles computed via Distribution match direct sorting.
func TestPropertyQuantileMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(200)
		var d Distribution
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			d.Add(vals[i])
		}
		sort.Float64s(vals)
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
			idx := int(math.Ceil(p*float64(n))) - 1
			if idx < 0 {
				idx = 0
			}
			if got := d.Quantile(p); got != vals[idx] {
				t.Fatalf("iter %d p=%v: got %v want %v", iter, p, got, vals[idx])
			}
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0 B"},
		{1, "1 B"},
		{999, "999 B"},
		{1024, "1 K"},
		{10 * 1024, "10 K"},
		{1 << 20, "1 M"},
		{1342177, "1.28 M"},
		{1 << 30, "1 G"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"Service", "TUE"}}
	tb.AddRow("Dropbox", "1.2")
	tb.AddRow("Google Drive", "11")
	s := tb.String()
	if !strings.Contains(s, "Service") || !strings.Contains(s, "Google Drive") {
		t.Fatalf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), s)
	}
	// All lines should be equally wide (fixed-width columns).
	for _, ln := range lines[1:] {
		if len(ln) > len(lines[0])+2 {
			t.Fatalf("ragged table:\n%s", s)
		}
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := Table{Header: []string{"A", "B", "C"}}
	tb.AddRow("x")
	s := tb.String()
	if !strings.Contains(s, "x") {
		t.Fatalf("missing cell:\n%s", s)
	}
}
