package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve for Chart.
type Series struct {
	Name string
	X, Y []float64
}

// ChartOptions controls Chart rendering.
type ChartOptions struct {
	// Width and Height are the plot-area dimensions in characters
	// (defaults 60×16).
	Width, Height int
	// LogY plots a log₁₀ Y axis — the natural scale for TUE curves that
	// span 1 to hundreds.
	LogY bool
	// YLabel annotates the axis.
	YLabel string
	// XLabel annotates the axis.
	XLabel string
}

// seriesMarks are the glyphs assigned to series in order.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the series as an ASCII line chart. Series share both
// axes; each uses its own glyph, listed in the legend. Empty input
// yields an empty string.
func Chart(title string, series []Series, opts ChartOptions) string {
	if len(series) == 0 {
		return ""
	}
	if opts.Width <= 0 {
		opts.Width = 60
	}
	if opts.Height <= 0 {
		opts.Height = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	yval := func(v float64) float64 {
		if opts.LogY {
			if v < 1e-9 {
				v = 1e-9
			}
			return math.Log10(v)
		}
		return v
	}
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			v := yval(s.Y[i])
			ymin, ymax = math.Min(ymin, v), math.Max(ymax, v)
		}
	}
	if math.IsInf(xmin, 1) {
		return ""
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(opts.Width-1)))
		return clampInt(c, 0, opts.Width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((yval(y) - ymin) / (ymax - ymin) * float64(opts.Height-1)))
		return clampInt(opts.Height-1-r, 0, opts.Height-1)
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			grid[row(s.Y[i])][col(s.X[i])] = mark
		}
	}

	unlog := func(v float64) float64 {
		if opts.LogY {
			return math.Pow(10, v)
		}
		return v
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	axisWidth := 9
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = axisNumber(unlog(ymax))
		case opts.Height / 2:
			label = axisNumber(unlog((ymin + ymax) / 2))
		case opts.Height - 1:
			label = axisNumber(unlog(ymin))
		}
		fmt.Fprintf(&b, "%*s |%s\n", axisWidth, label, string(line))
	}
	fmt.Fprintf(&b, "%*s +%s\n", axisWidth, "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%*s  %-*s%s\n", axisWidth, "",
		opts.Width-len(axisNumber(xmax)), axisNumber(xmin), axisNumber(xmax))
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s   y: %s", axisWidth, "", opts.XLabel, orDash(opts.YLabel))
		if opts.LogY {
			b.WriteString(" (log scale)")
		}
		b.WriteByte('\n')
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%*s  %c %s\n", axisWidth, "", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func axisNumber(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
