// Package metrics provides the small statistical toolkit the measurement
// harness is built on: byte/packet counters, sample distributions with
// quantiles and CDF evaluation, and text rendering helpers for tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Counter accumulates a monotonically increasing integer quantity such
// as bytes on the wire. The zero value is ready to use.
type Counter struct {
	n int64
}

// Add increases the counter by delta. Negative deltas panic: counters
// are monotone by contract, and a negative delta always indicates an
// accounting bug upstream.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: Counter.Add(%d): negative delta", delta))
	}
	c.n += delta
}

// Value reports the accumulated total.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Distribution collects float64 samples and answers order-statistics
// queries. The zero value is ready to use. Samples are sorted lazily on
// first query after an Add.
type Distribution struct {
	samples []float64
	sorted  bool
}

// Add records one sample. NaN samples panic: they would silently poison
// every subsequent quantile.
func (d *Distribution) Add(v float64) {
	if math.IsNaN(v) {
		panic("metrics: Distribution.Add(NaN)")
	}
	d.samples = append(d.samples, v)
	d.sorted = false
}

// AddN records the same sample value n times. Useful when expanding
// weighted trace records.
func (d *Distribution) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		d.Add(v)
	}
}

// Count reports the number of samples.
func (d *Distribution) Count() int { return len(d.samples) }

// Sum reports the sum of all samples.
func (d *Distribution) Sum() float64 {
	var s float64
	for _, v := range d.samples {
		s += v
	}
	return s
}

// Mean reports the arithmetic mean, or 0 for an empty distribution.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.Sum() / float64(len(d.samples))
}

// Min reports the smallest sample, or 0 for an empty distribution.
func (d *Distribution) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[0]
}

// Max reports the largest sample, or 0 for an empty distribution.
func (d *Distribution) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[len(d.samples)-1]
}

// Quantile reports the p-quantile (0 ≤ p ≤ 1) using nearest-rank on the
// sorted samples. p outside [0,1] is clamped. Returns 0 for an empty
// distribution.
func (d *Distribution) Quantile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	d.sort()
	idx := int(math.Ceil(p*float64(len(d.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.samples[idx]
}

// Median is shorthand for Quantile(0.5).
func (d *Distribution) Median() float64 { return d.Quantile(0.5) }

// CDF reports the fraction of samples ≤ x. Returns 0 for an empty
// distribution.
func (d *Distribution) CDF(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	// First index with sample > x.
	i := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(d.samples))
}

// CDFPoints samples the CDF at the given x values, returning matching
// fractions. Convenient for rendering figure series.
func (d *Distribution) CDFPoints(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = d.CDF(x)
	}
	return out
}

func (d *Distribution) sort() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// HumanBytes formats a byte count the way the paper's tables do:
// "1 K", "1.28 M", "12.5 M", with whole bytes below 1000.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return trimf(float64(n)/(1<<30)) + " G"
	case n >= 1<<20:
		return trimf(float64(n)/(1<<20)) + " M"
	case n >= 1000:
		return trimf(float64(n)/(1<<10)) + " K"
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func trimf(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Table renders a fixed-width text table: a header row followed by data
// rows, columns padded to the widest cell. It is the output format used
// by cmd/tuebench for every reproduced paper table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one data row. Short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var out []byte
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			out = append(out, fmt.Sprintf("%-*s", width[i], cell)...)
			if i != ncol-1 {
				out = append(out, "  "...)
			}
		}
		out = append(out, '\n')
	}
	writeRow(t.Header)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = repeat('-', width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return string(out)
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
