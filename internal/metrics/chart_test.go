package metrics

import (
	"strings"
	"testing"
)

func TestChartEmpty(t *testing.T) {
	if Chart("t", nil, ChartOptions{}) != "" {
		t.Fatal("empty series should render nothing")
	}
	if Chart("t", []Series{{Name: "a"}}, ChartOptions{}) != "" {
		t.Fatal("series with no points should render nothing")
	}
}

func TestChartBasics(t *testing.T) {
	s := Chart("TUE vs X", []Series{
		{Name: "Box", X: []float64{1, 2, 3, 4}, Y: []float64{100, 80, 60, 40}},
		{Name: "Dropbox", X: []float64{1, 2, 3, 4}, Y: []float64{50, 30, 20, 10}},
	}, ChartOptions{Width: 40, Height: 10, XLabel: "X (s)", YLabel: "TUE"})

	for _, want := range []string{"TUE vs X", "* Box", "o Dropbox", "x: X (s)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("chart missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title + 10 rows + axis + labels + legend lines.
	if len(lines) < 14 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), s)
	}
	// Highest value appears in the top row of the plot area, lowest in
	// the bottom row.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max point not in top row:\n%s", s)
	}
	if !strings.Contains(lines[10], "o") {
		t.Fatalf("min point not in bottom row:\n%s", s)
	}
}

func TestChartLogY(t *testing.T) {
	s := Chart("", []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 10, 100}},
	}, ChartOptions{Width: 30, Height: 9, LogY: true, YLabel: "TUE", XLabel: "X"})
	if !strings.Contains(s, "log scale") {
		t.Fatalf("log axis not labeled:\n%s", s)
	}
	// On a log axis, 10 sits exactly mid-way between 1 and 100: the
	// middle axis label should read 10.
	if !strings.Contains(s, "10.0") && !strings.Contains(s, "10.00") {
		t.Fatalf("log midpoint label missing:\n%s", s)
	}
}

func TestChartConstantSeries(t *testing.T) {
	s := Chart("flat", []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{5, 5}},
	}, ChartOptions{Width: 20, Height: 5})
	if s == "" || !strings.Contains(s, "*") {
		t.Fatalf("constant series should still render:\n%s", s)
	}
}

func TestChartMismatchedLengths(t *testing.T) {
	// Extra X values beyond Y are ignored, no panic.
	s := Chart("", []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1}},
	}, ChartOptions{Width: 10, Height: 4})
	if s == "" {
		t.Fatal("should render the one valid point")
	}
}
