package planner

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"
)

// allowedImports is the planner's complete import budget. Everything
// here is side-effect free: no package on this list can reach the
// filesystem, the network, or a clock. Adding an import to the planner
// means consciously extending this list — and defending the purity
// argument in review.
var allowedImports = map[string]bool{
	"fmt":                            true,
	"sort":                           true,
	"strings":                        true,
	"time":                           true, // Duration arithmetic only; time.Now et al. banned below
	"cloudsync/internal/deferpolicy": true,
}

// bannedTimeFuncs are the clock-reading (or goroutine-spawning)
// identifiers of package time. time.Duration values flow through the
// planner freely, but the current time must always arrive as an input.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// TestPlannerIsPure enforces the package contract mechanically: the
// planner's non-test sources may import only the allowlist above and
// may never call a clock. This is what makes "every scenario is a
// table-driven test" a property rather than a hope.
func TestPlannerIsPure(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		checked++
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !allowedImports[path] {
				t.Errorf("%s imports %q, which is outside the planner's purity allowlist", name, path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg.Name == "time" && bannedTimeFuncs[sel.Sel.Name] {
				t.Errorf("%s:%v: time.%s reads a clock; the planner must take time as an input",
					name, fset.Position(sel.Pos()), sel.Sel.Name)
			}
			return true
		})
	}
	if checked == 0 {
		t.Fatal("no planner sources found — test running in the wrong directory?")
	}
}
