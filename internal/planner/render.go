package planner

import (
	"fmt"
	"sort"
	"strings"
)

// FormatTable renders a plan as a stable, column-aligned text table —
// the output of `syncwatch -dry-run`, committed as a golden file. The
// rendering depends only on the plan value, so equal plans produce
// byte-identical tables.
func FormatTable(p Output) string {
	var b strings.Builder
	rows := make([][4]string, 0, len(p.Actions)+1)
	rows = append(rows, [4]string{"ACTION", "PATH", "SIZE", "REASON"})
	counts := make(map[ActionKind]int)
	for _, a := range p.Actions {
		counts[a.Kind]++
		size := "-"
		if !a.Absent && a.Kind != Delete {
			size = fmt.Sprintf("%d", a.Size)
		}
		reason := a.Reason
		if a.Kind == Defer {
			reason = fmt.Sprintf("%s (until t+%v)", reason, a.Until-p.Now)
		}
		rows = append(rows, [4]string{a.Kind.String(), a.Path, size, reason})
	}

	var w [4]int
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %*s  %s\n", w[0], r[0], w[1], r[1], w[2], r[2], r[3])
	}

	kinds := make([]ActionKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if a, b := kindOrder(kinds[i]), kindOrder(kinds[j]); a != b {
			return a < b
		}
		return kinds[i] < kinds[j]
	})
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
	}
	if len(parts) == 0 {
		parts = append(parts, "nothing to do")
	}
	fmt.Fprintf(&b, "\n%d action(s): %s\n", len(p.Actions), strings.Join(parts, ", "))
	return b.String()
}
