package planner

import (
	"crypto/md5"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"cloudsync/internal/deferpolicy"
)

// Content fingerprints the table cases share. Distinct letters are
// distinct contents.
var (
	hashA = md5.Sum([]byte("content-a"))
	hashB = md5.Sum([]byte("content-b"))
	hashC = md5.Sum([]byte("content-c"))
	zeroH [16]byte
)

const (
	s  = time.Second
	ms = time.Millisecond
)

// fmtAction renders one action compactly for expectation matching:
// kind, path, reason, and the defer deadline when present.
func fmtAction(a Action) string {
	out := fmt.Sprintf("%s %s [%s]", a.Kind, a.Path, a.Reason)
	if a.Kind == Defer {
		out += fmt.Sprintf(" until=%v", a.Until)
	}
	return out
}

// applyTable simulates executing a plan: successful transfers update
// baseline and remote the way the pipeline would, deferred changes
// stay pending with their writes consumed. The result is the Input of
// the next round — used to assert plan∘apply reaches a fixpoint.
func applyTable(in Input, out Output) Input {
	next := Input{
		Now:         in.Now,
		Baseline:    map[string]FileMeta{},
		Remote:      map[string]RemoteFile{},
		RemoteKnown: in.RemoteKnown,
		Defer:       in.Defer,
		DeferState:  out.DeferState,
	}
	for p, m := range in.Baseline {
		next.Baseline[p] = m
	}
	for p, r := range in.Remote {
		next.Remote[p] = r
	}
	bump := func(path string) uint64 {
		v := next.Baseline[path].Version
		if r, ok := next.Remote[path]; ok && r.Version > v {
			v = r.Version
		}
		return v + 1
	}
	for _, a := range out.Actions {
		switch a.Kind {
		case Upload, Delta:
			v := bump(a.Path)
			next.Baseline[a.Path] = FileMeta{Size: a.Size, MD5: a.MD5, Version: v}
			if in.RemoteKnown {
				id := next.Remote[a.Path].FileID
				next.Remote[a.Path] = RemoteFile{FileID: id, Size: a.Size, MD5: a.MD5, Version: v}
			}
		case Delete:
			delete(next.Baseline, a.Path)
			if in.RemoteKnown {
				r := next.Remote[a.Path]
				r.Deleted = true
				r.Version++
				next.Remote[a.Path] = r
			}
		case NoOp:
			if a.Absent {
				delete(next.Baseline, a.Path)
			} else {
				m := FileMeta{Size: a.Size, MD5: a.MD5, Version: a.Version}
				if m.Version == 0 {
					m.Version = next.Baseline[a.Path].Version
				}
				next.Baseline[a.Path] = m
			}
		case Defer:
			next.Changes = append(next.Changes, Change{
				Path: a.Path, Size: a.Size, MD5: a.MD5, // writes consumed
			})
		}
	}
	return next
}

type tableCase struct {
	name string
	in   Input
	want []string
	// wantWake asserts NextWake when nonzero (all defer deadlines in the
	// corpus are nonzero).
	wantWake time.Duration
	// noIdem skips the fixpoint check for cases that deliberately leave
	// deferred work pending at a fixed Now.
	noIdem bool
	// extra runs additional assertions on the output.
	extra func(t *testing.T, out Output)
}

func tableCases() []tableCase {
	base1 := map[string]FileMeta{"a.txt": {Size: 9, MD5: hashA, Version: 3}}
	remoteLiveA := map[string]RemoteFile{"a.txt": {FileID: 1, Size: 9, MD5: hashA, Version: 3}}
	remoteLiveB := map[string]RemoteFile{"a.txt": {FileID: 1, Size: 9, MD5: hashB, Version: 5}}
	remoteDeleted := map[string]RemoteFile{"a.txt": {FileID: 1, Size: 9, MD5: hashA, Version: 4, Deleted: true}}

	wA := Change{Path: "a.txt", Size: 9, MD5: hashA}
	wB := Change{Path: "a.txt", Size: 9, MD5: hashB}
	rm := Change{Path: "a.txt", Remove: true}

	fixed5 := DeferConfig{Mode: DeferFixed, FixedT: 5 * s}
	asd := DeferConfig{Mode: DeferASD, Epsilon: 100 * ms, TMax: 10 * s}
	uds := DeferConfig{Mode: DeferUDS, Threshold: 1 << 20, MaxDelay: 4 * s}

	withWrites := func(ch Change, ws ...time.Duration) Change {
		ch.Writes = ws
		return ch
	}

	return []tableCase{
		// --- creates ---
		{
			name: "create/empty-world",
			in:   Input{Now: s, Changes: []Change{wA}, RemoteKnown: true},
			want: []string{"upload a.txt [new file]"},
		},
		{
			name: "create/remote-already-matches",
			in:   Input{Now: s, Changes: []Change{wA}, Remote: remoteLiveA, RemoteKnown: true},
			want: []string{"no-op a.txt [remote already matches]"},
		},
		{
			name: "create/remote-differs",
			in:   Input{Now: s, Changes: []Change{wB}, Remote: remoteLiveA, RemoteKnown: true},
			want: []string{"delta a.txt [modified locally]"},
		},
		{
			name: "create/remote-fake-deleted",
			in:   Input{Now: s, Changes: []Change{wA}, Remote: remoteDeleted, RemoteKnown: true},
			want: []string{"upload a.txt [new file]"},
		},
		{
			name: "create/no-listing-no-baseline",
			in:   Input{Now: s, Changes: []Change{wA}},
			want: []string{"upload a.txt [new file]"},
		},
		{
			name: "create/remote-zero-hash-is-unknown",
			in: Input{Now: s, Changes: []Change{wA},
				Remote:      map[string]RemoteFile{"a.txt": {FileID: 1, Size: 9, MD5: zeroH, Version: 2}},
				RemoteKnown: true},
			want: []string{"delta a.txt [modified locally]"},
		},
		// --- modifies ---
		{
			name: "modify/baseline-and-live-remote",
			in: Input{Now: s, Baseline: base1, Changes: []Change{wB},
				Remote: remoteLiveA, RemoteKnown: true},
			want: []string{"delta a.txt [modified locally]"},
		},
		{
			name: "modify/no-listing-trust-baseline",
			in:   Input{Now: s, Baseline: base1, Changes: []Change{wB}},
			want: []string{"delta a.txt [modified locally]"},
		},
		{
			name: "modify/unchanged-since-baseline-no-listing",
			in:   Input{Now: s, Baseline: base1, Changes: []Change{wA}},
			want: []string{"no-op a.txt [unchanged since baseline]"},
		},
		{
			name: "modify/unchanged-and-remote-matches",
			in: Input{Now: s, Baseline: base1, Changes: []Change{wA},
				Remote: remoteLiveA, RemoteKnown: true},
			want: []string{"no-op a.txt [remote already matches]"},
		},
		{
			name: "modify/unchanged-but-remote-vanished",
			in:   Input{Now: s, Baseline: base1, Changes: []Change{wA}, RemoteKnown: true},
			want: []string{"upload a.txt [remote missing; restore]"},
		},
		{
			name: "modify/unchanged-but-remote-diverged",
			in: Input{Now: s, Baseline: base1, Changes: []Change{wA},
				Remote: remoteLiveB, RemoteKnown: true},
			want: []string{"delta a.txt [remote diverged; local wins]"},
		},
		{
			name: "modify/size-change-same-prefix-hash-differs",
			in: Input{Now: s, Baseline: base1,
				Changes: []Change{{Path: "a.txt", Size: 12, MD5: hashC}},
				Remote:  remoteLiveA, RemoteKnown: true},
			want: []string{"delta a.txt [modified locally]"},
		},
		// --- removes ---
		{
			name: "remove/live-remote",
			in: Input{Now: s, Baseline: base1, Changes: []Change{rm},
				Remote: remoteLiveA, RemoteKnown: true},
			want: []string{"delete a.txt [removed locally]"},
		},
		{
			name: "remove/remote-never-had-it",
			in:   Input{Now: s, Changes: []Change{rm}, RemoteKnown: true},
			want: []string{"no-op a.txt [already absent remotely]"},
		},
		{
			name: "remove/remote-already-deleted",
			in: Input{Now: s, Baseline: base1, Changes: []Change{rm},
				Remote: remoteDeleted, RemoteKnown: true},
			want: []string{"no-op a.txt [already absent remotely]"},
		},
		{
			name: "remove/no-listing-with-baseline",
			in:   Input{Now: s, Baseline: base1, Changes: []Change{rm}},
			want: []string{"delete a.txt [removed locally]"},
		},
		{
			name: "remove/no-listing-never-synced",
			in:   Input{Now: s, Changes: []Change{rm}},
			want: []string{"no-op a.txt [never synced]"},
		},
		{
			name: "remove/never-deferred-despite-defer-mode",
			in: Input{Now: 0, Baseline: base1, Changes: []Change{rm},
				Remote: remoteLiveA, RemoteKnown: true, Defer: fixed5},
			want: []string{"delete a.txt [removed locally]"},
		},
		// --- rename and ordering ---
		{
			name: "rename/upload-before-delete",
			in: Input{Now: s,
				Baseline: map[string]FileMeta{"old.txt": {Size: 9, MD5: hashA, Version: 1}},
				Changes: []Change{
					{Path: "old.txt", Remove: true},
					{Path: "new.txt", Size: 9, MD5: hashA},
				},
				Remote:      map[string]RemoteFile{"old.txt": {FileID: 1, Size: 9, MD5: hashA, Version: 1}},
				RemoteKnown: true},
			want: []string{
				"upload new.txt [new file]",
				"delete old.txt [removed locally]",
			},
		},
		{
			name: "ordering/paths-sorted-within-kind",
			in: Input{Now: s, Changes: []Change{
				{Path: "b.txt", Size: 1, MD5: hashB},
				{Path: "a.txt", Size: 1, MD5: hashA},
				{Path: "c.txt", Size: 1, MD5: hashC},
			}, RemoteKnown: true},
			want: []string{
				"upload a.txt [new file]",
				"upload b.txt [new file]",
				"upload c.txt [new file]",
			},
		},
		{
			name: "ordering/kind-groups",
			in: Input{Now: s,
				Baseline: map[string]FileMeta{
					"dead.txt": {Size: 9, MD5: hashA, Version: 1},
					"sync.txt": {Size: 9, MD5: hashB, Version: 2},
				},
				Changes: []Change{
					{Path: "dead.txt", Remove: true},
					{Path: "new.txt", Size: 3, MD5: hashC},
					withWrites(Change{Path: "slow.txt", Size: 3, MD5: hashA}, s),
					{Path: "sync.txt", Size: 9, MD5: hashB},
				},
				Remote: map[string]RemoteFile{
					"dead.txt": {FileID: 1, Size: 9, MD5: hashA, Version: 1},
					"sync.txt": {FileID: 2, Size: 9, MD5: hashB, Version: 2},
				},
				RemoteKnown: true, Defer: fixed5},
			want: []string{
				"upload new.txt [new file]",
				"delete dead.txt [removed locally]",
				"defer slow.txt [defer window open] until=6s",
				"no-op sync.txt [remote already matches]",
			},
			wantWake: 6 * s, noIdem: true,
		},
		// --- fixed deferment ---
		{
			name: "defer-fixed/window-open",
			in: Input{Now: 2 * s, Changes: []Change{withWrites(wA, s)},
				RemoteKnown: true, Defer: fixed5},
			want:     []string{"defer a.txt [defer window open] until=6s"},
			wantWake: 6 * s, noIdem: true,
		},
		{
			name: "defer-fixed/boundary-exactly-now-is-ready",
			in: Input{Now: 6 * s, Changes: []Change{withWrites(wA, s)},
				RemoteKnown: true, Defer: fixed5},
			want: []string{"upload a.txt [new file]"},
		},
		{
			name: "defer-fixed/rearmed-by-second-write",
			in: Input{Now: 6 * s, Changes: []Change{withWrites(wA, s, 4*s)},
				RemoteKnown: true, Defer: fixed5},
			want:     []string{"defer a.txt [defer window open] until=9s"},
			wantWake: 9 * s, noIdem: true,
		},
		{
			name: "defer-fixed/carried-deadline-no-new-writes",
			in: Input{Now: 3 * s, Changes: []Change{wA}, RemoteKnown: true, Defer: fixed5,
				DeferState: map[string]DeferState{"a.txt": {Deadline: 6 * s, Armed: true}}},
			want:     []string{"defer a.txt [defer window open] until=6s"},
			wantWake: 6 * s, noIdem: true,
		},
		{
			name: "defer-fixed/carried-deadline-expired",
			in: Input{Now: 7 * s, Changes: []Change{wA}, RemoteKnown: true, Defer: fixed5,
				DeferState: map[string]DeferState{"a.txt": {Deadline: 6 * s, Armed: true}}},
			want: []string{"upload a.txt [new file]"},
		},
		{
			name: "defer-fixed/zero-T-syncs-immediately",
			in: Input{Now: s, Changes: []Change{withWrites(wA, s)},
				RemoteKnown: true, Defer: DeferConfig{Mode: DeferFixed, FixedT: 0}},
			want: []string{"upload a.txt [new file]"},
		},
		// --- ASD ---
		{
			name: "defer-asd/first-write-defers-by-epsilon",
			in: Input{Now: s, Changes: []Change{withWrites(wA, s)},
				RemoteKnown: true, Defer: asd},
			want:     []string{"defer a.txt [defer window open] until=1.1s"},
			wantWake: s + 100*ms, noIdem: true,
		},
		{
			name: "defer-asd/estimate-tracks-interupdate-time",
			// Writes at 1s and 3s: T1 = ε = 100ms, T2 = T1/2 + Δt/2 + ε =
			// 50ms + 1s + 100ms = 1.15s ⇒ deadline 4.15s.
			in: Input{Now: 3 * s, Changes: []Change{withWrites(wA, s, 3*s)},
				RemoteKnown: true, Defer: asd},
			want:     []string{"defer a.txt [defer window open] until=4.15s"},
			wantWake: 3*s + 1150*ms, noIdem: true,
		},
		{
			name: "defer-asd/tmax-caps-deferment",
			in: Input{Now: 100 * s, Changes: []Change{withWrites(wA, s, 99*s)},
				RemoteKnown: true,
				Defer:       DeferConfig{Mode: DeferASD, Epsilon: 100 * ms, TMax: 2 * s}},
			want:     []string{"defer a.txt [defer window open] until=1m41s"},
			wantWake: 101 * s, noIdem: true,
		},
		{
			name: "defer-asd/ready-after-deadline",
			in: Input{Now: 2 * s, Changes: []Change{withWrites(wA, s)},
				RemoteKnown: true, Defer: asd},
			want: []string{"upload a.txt [new file]"},
			extra: func(t *testing.T, out Output) {
				st, ok := out.DeferState["a.txt"]
				if !ok || st.Armed || !st.ASD.Seen {
					t.Errorf("ASD estimator state not carried across a sync: %+v (present=%v)", st, ok)
				}
			},
		},
		{
			name: "defer-asd/burst-keeps-deferring",
			// Updates every 200ms; the estimate converges toward Δt+2ε =
			// 400ms > 200ms, so each write lands inside the window.
			in: Input{Now: 2 * s,
				Changes: []Change{withWrites(wB,
					s, s+200*ms, s+400*ms, s+600*ms, s+800*ms, 2*s)},
				RemoteKnown: true, Defer: asd},
			want: []string{"defer a.txt [defer window open] until=2.390625s"},
			noIdem: true, wantWake: 2*s + 390625*time.Microsecond,
		},
		// --- UDS ---
		{
			name: "defer-uds/below-threshold-lingers",
			in: Input{Now: s, Changes: []Change{withWrites(wA, s)},
				RemoteKnown: true, Defer: uds},
			want:     []string{"defer a.txt [defer window open] until=5s"},
			wantWake: 5 * s, noIdem: true,
		},
		{
			name: "defer-uds/at-threshold-immediate",
			in: Input{Now: s,
				Changes:     []Change{withWrites(Change{Path: "big.bin", Size: 1 << 20, MD5: hashC}, s)},
				RemoteKnown: true, Defer: uds},
			want: []string{"upload big.bin [new file]"},
		},
		{
			name: "defer-uds/linger-expired",
			in: Input{Now: 5 * s, Changes: []Change{withWrites(wA, s)},
				RemoteKnown: true, Defer: uds},
			want: []string{"upload a.txt [new file]"},
		},
		{
			name: "defer-uds/rearmed-by-new-write",
			in: Input{Now: 5 * s, Changes: []Change{withWrites(wA, s, 4*s)},
				RemoteKnown: true, Defer: uds},
			want:     []string{"defer a.txt [defer window open] until=8s"},
			wantWake: 8 * s, noIdem: true,
		},
		// --- none mode ---
		{
			name: "defer-none/writes-never-defer",
			in: Input{Now: 0, Changes: []Change{withWrites(wA, 0)},
				RemoteKnown: true},
			want: []string{"upload a.txt [new file]"},
		},
		{
			name: "defer-none/write-at-future-time-still-ready",
			in: Input{Now: 0, Changes: []Change{withWrites(wA, s)},
				RemoteKnown: true},
			want: []string{"upload a.txt [new file]"},
		},
		// --- startup reconciliation (rescan-as-creates) ---
		{
			name: "startup/rescan-matches-baseline-and-remote",
			in: Input{Now: s, Baseline: base1, Changes: []Change{wA},
				Remote: remoteLiveA, RemoteKnown: true},
			want: []string{"no-op a.txt [remote already matches]"},
		},
		{
			name: "startup/rescan-no-listing-trusts-baseline",
			in:   Input{Now: s, Baseline: base1, Changes: []Change{wA}},
			want: []string{"no-op a.txt [unchanged since baseline]"},
		},
		// --- divergence repair without pending changes ---
		{
			name: "repair/remote-lost-file",
			in:   Input{Now: s, Baseline: base1, RemoteKnown: true},
			want: []string{"upload a.txt [remote missing; restore]"},
		},
		{
			name: "repair/remote-fake-deleted",
			in:   Input{Now: s, Baseline: base1, Remote: remoteDeleted, RemoteKnown: true},
			want: []string{"upload a.txt [remote missing; restore]"},
		},
		{
			name: "repair/remote-content-diverged",
			in:   Input{Now: s, Baseline: base1, Remote: remoteLiveB, RemoteKnown: true},
			want: []string{"delta a.txt [remote diverged; local wins]"},
		},
		{
			name: "repair/version-drift-only",
			in: Input{Now: s, Baseline: base1,
				Remote:      map[string]RemoteFile{"a.txt": {FileID: 1, Size: 9, MD5: hashA, Version: 7}},
				RemoteKnown: true},
			want: []string{"no-op a.txt [record remote version]"},
		},
		{
			name: "repair/fully-in-sync-plans-nothing",
			in:   Input{Now: s, Baseline: base1, Remote: remoteLiveA, RemoteKnown: true},
			want: nil,
		},
		{
			name: "repair/no-listing-no-repair",
			in:   Input{Now: s, Baseline: base1},
			want: nil,
		},
		// --- remote-only files (one-way mirror) ---
		{
			name: "mirror/remote-only-file-ignored",
			in: Input{Now: s,
				Remote:      map[string]RemoteFile{"other-device.txt": {FileID: 9, Size: 5, MD5: hashC, Version: 1}},
				RemoteKnown: true},
			want: nil,
		},
		// --- misc ---
		{
			name: "empty/plans-nothing",
			in:   Input{Now: s},
			want: nil,
		},
		{
			name: "wake/min-of-multiple-deadlines",
			in: Input{Now: 2 * s, Defer: fixed5, RemoteKnown: true,
				Changes: []Change{
					withWrites(Change{Path: "x", Size: 1, MD5: hashA}, s),
					withWrites(Change{Path: "y", Size: 1, MD5: hashB}, 0),
				}},
			want: []string{
				"defer x [defer window open] until=6s",
				"defer y [defer window open] until=5s",
			},
			wantWake: 5 * s, noIdem: true,
		},
		{
			name: "state/asd-memory-survives-quiet-rounds",
			in: Input{Now: 10 * s, Defer: asd, RemoteKnown: true,
				DeferState: map[string]DeferState{
					"idle.txt": {ASD: deferpolicy.ASDState{T: 700 * ms, LastUpdate: 2 * s, Seen: true}},
				}},
			want: nil,
			extra: func(t *testing.T, out Output) {
				st, ok := out.DeferState["idle.txt"]
				if !ok || st.Armed || st.ASD.T != 700*ms || st.ASD.LastUpdate != 2*s {
					t.Errorf("ASD estimator memory lost across a quiet round: %+v (present=%v)", st, ok)
				}
			},
		},
		{
			name: "state/remove-drops-asd-memory",
			in: Input{Now: s, Baseline: base1, Changes: []Change{rm},
				Remote: remoteLiveA, RemoteKnown: true, Defer: asd,
				DeferState: map[string]DeferState{
					"a.txt": {ASD: deferpolicy.ASDState{T: 700 * ms, LastUpdate: 500 * ms, Seen: true}},
				}},
			want: []string{"delete a.txt [removed locally]"},
			extra: func(t *testing.T, out Output) {
				if _, ok := out.DeferState["a.txt"]; ok {
					t.Errorf("deleted path kept defer state: %+v", out.DeferState["a.txt"])
				}
			},
		},
		{
			name: "state/stale-armed-state-without-asd-dropped",
			in: Input{Now: 10 * s, Defer: fixed5, RemoteKnown: true,
				Changes:    []Change{withWrites(wA, s)},
				DeferState: map[string]DeferState{"gone.txt": {Deadline: 2 * s, Armed: true}}},
			want: []string{"upload a.txt [new file]"},
			extra: func(t *testing.T, out Output) {
				if len(out.DeferState) != 0 {
					t.Errorf("stale defer state leaked: %+v", out.DeferState)
				}
			},
		},
	}
}

func TestPlannerTable(t *testing.T) {
	for _, tc := range tableCases() {
		t.Run(tc.name, func(t *testing.T) {
			out := Plan(tc.in)
			got := make([]string, len(out.Actions))
			for i, a := range out.Actions {
				got[i] = fmtAction(a)
			}
			if !reflect.DeepEqual(got, tc.want) && !(len(got) == 0 && len(tc.want) == 0) {
				t.Fatalf("actions:\n got: %s\nwant: %s",
					strings.Join(got, "\n      "), strings.Join(tc.want, "\n      "))
			}
			if tc.wantWake != 0 {
				if !out.Wake || out.NextWake != tc.wantWake {
					t.Fatalf("NextWake = (%v, wake=%v), want %v", out.NextWake, out.Wake, tc.wantWake)
				}
			}
			if tc.extra != nil {
				tc.extra(t, out)
			}

			// Determinism: equal inputs, equal plans.
			again := Plan(tc.in)
			if !reflect.DeepEqual(out, again) {
				t.Fatalf("planning is not deterministic:\nfirst:  %+v\nsecond: %+v", out, again)
			}

			// Fixpoint: once a plan is applied, re-planning moves no bytes.
			if !tc.noIdem {
				next := applyTable(tc.in, out)
				out2 := Plan(next)
				for _, a := range out2.Actions {
					if a.Kind != NoOp && a.Kind != Defer {
						t.Fatalf("plan(apply(plan)) still wants %s — not idempotent\nfirst plan: %+v",
							fmtAction(a), out.Actions)
					}
				}
			}
		})
	}
}

// TestPlannerPanicsOnDuplicateChange pins the buffer contract: two
// changes for one path in a single round is a bug upstream, and the
// planner refuses to guess which wins.
func TestPlannerPanicsOnDuplicateChange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate change paths did not panic")
		}
	}()
	Plan(Input{Changes: []Change{
		{Path: "a", Size: 1, MD5: hashA},
		{Path: "a", Size: 2, MD5: hashB},
	}})
}

// TestPlannerPanicsOnDescendingWrites pins the other half of the
// contract: write timestamps must arrive in order, or the defer replay
// would silently mis-estimate.
func TestPlannerPanicsOnDescendingWrites(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending write times did not panic")
		}
	}()
	Plan(Input{Changes: []Change{
		{Path: "a", Size: 1, MD5: hashA, Writes: []time.Duration{2 * s, s}},
	}})
}

// TestPlannerDoesNotMutateInput guards purity from the other side: the
// inputs must come back byte-identical, so callers can re-plan or
// shrink failing scenarios without defensive copies.
func TestPlannerDoesNotMutateInput(t *testing.T) {
	in := Input{
		Now:      s,
		Baseline: map[string]FileMeta{"a.txt": {Size: 9, MD5: hashA, Version: 3}},
		Changes: []Change{
			{Path: "a.txt", Size: 9, MD5: hashB, Writes: []time.Duration{s}},
			{Path: "b.txt", Remove: true},
		},
		Remote:      map[string]RemoteFile{"a.txt": {FileID: 1, Size: 9, MD5: hashA, Version: 3}},
		RemoteKnown: true,
		Defer:       DeferConfig{Mode: DeferASD, Epsilon: 100 * ms, TMax: 10 * s},
		DeferState:  map[string]DeferState{"a.txt": {Deadline: 500 * ms, Armed: true}},
	}
	snap := fmt.Sprintf("%+v", in)
	Plan(in)
	if got := fmt.Sprintf("%+v", in); got != snap {
		t.Fatalf("Plan mutated its input:\nbefore: %s\nafter:  %s", snap, got)
	}
}

// TestFormatTableStable pins the dry-run renderer shape on a mixed
// plan (the full committed golden lives under cmd/syncwatch/testdata).
func TestFormatTableStable(t *testing.T) {
	out := Plan(Input{
		Now: 2 * s,
		Baseline: map[string]FileMeta{
			"keep.txt": {Size: 4, MD5: hashA, Version: 1},
			"gone.txt": {Size: 8, MD5: hashB, Version: 2},
		},
		Changes: []Change{
			{Path: "keep.txt", Size: 4, MD5: hashA},
			{Path: "gone.txt", Remove: true},
			{Path: "fresh.bin", Size: 123, MD5: hashC},
		},
	})
	got := FormatTable(out)
	want := "" +
		"ACTION  PATH       SIZE  REASON\n" +
		"upload  fresh.bin   123  new file\n" +
		"delete  gone.txt      -  removed locally\n" +
		"no-op   keep.txt      4  unchanged since baseline\n" +
		"\n3 action(s): 1 upload, 1 delete, 1 no-op\n"
	if got != want {
		t.Fatalf("FormatTable:\n got:\n%s\nwant:\n%s", got, want)
	}
}
