// Package planner is the pure heart of the watch-mode sync pipeline:
// a deterministic, I/O-free reconciliation function that turns (confirmed
// baseline, pending local changes, remote listing, defer policy knobs)
// into an ordered list of sync actions.
//
// Purity is the point. The planner never touches the filesystem, the
// network, or a wall clock — every timestamp it reasons about arrives
// as an input, and the adaptive sync defer (ASD) estimator is advanced
// with deferpolicy's pure step function, its state threaded through
// Input/Plan by value. Equal inputs therefore produce equal plans,
// which turns every sync scenario — create/modify/delete races,
// defer-window boundaries, local–remote divergence, crash-restart
// reconciliation — into a table-driven test over plain structs
// (planner_table_test.go) and lets a property harness replay thousands
// of interleavings with exact expectations. An enforcement test
// (purity_test.go) rejects any import or time.Now-style call that
// would break the contract.
//
// The planner implements a one-way mirror (local wins): local state is
// authoritative, remote divergence is repaired by re-uploading, and
// remote-only files are ignored. Conflict-aware bidirectional merging
// is a planned extension; because planning is pure, it will arrive as
// new table rows, not new machinery.
package planner

import (
	"fmt"
	"sort"
	"time"

	"cloudsync/internal/deferpolicy"
)

// FileMeta is one file's confirmed synced state in the baseline: what
// the client last uploaded and the server acknowledged.
type FileMeta struct {
	Size    int64
	MD5     [16]byte
	Version uint64
}

// RemoteFile is one file's state in the remote listing.
type RemoteFile struct {
	FileID  uint64
	Size    int64
	MD5     [16]byte // zero = unknown (never "matches")
	Version uint64
	Deleted bool
}

// Change is one pending, already-coalesced local change — the change
// buffer guarantees at most one Change per path per planning round.
type Change struct {
	Path string
	// Remove marks that the file no longer exists locally. Size, MD5,
	// and Writes are meaningless for removes.
	Remove bool
	// Size and MD5 describe the current local content.
	Size int64
	MD5  [16]byte
	// Writes lists the virtual times of the write events observed since
	// the previous planning round, ascending. The planner folds them
	// into the defer estimator exactly once: callers must clear a
	// pending change's Writes after planning (the returned DeferState
	// carries their effect forward).
	Writes []time.Duration
}

// DeferMode selects the deferment policy the planner applies to write
// changes (§6.1 of the paper). Removes always sync immediately: a
// deferred deletion saves no payload bytes and risks resurrecting the
// file on a crash.
type DeferMode uint8

const (
	// DeferNone syncs as soon as possible.
	DeferNone DeferMode = iota
	// DeferFixed re-arms a fixed deferment T on every write.
	DeferFixed
	// DeferASD runs the paper's adaptive sync defer, Eq. (2).
	DeferASD
	// DeferUDS defers until pending bytes reach a threshold, with a
	// maximum linger re-armed on every write.
	DeferUDS
)

// String names the mode.
func (m DeferMode) String() string {
	switch m {
	case DeferNone:
		return "none"
	case DeferFixed:
		return "fixed"
	case DeferASD:
		return "asd"
	case DeferUDS:
		return "uds"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// DeferConfig is the planner's deferment policy knob.
type DeferConfig struct {
	Mode DeferMode
	// FixedT is the deferment for DeferFixed.
	FixedT time.Duration
	// Epsilon and TMax parameterize DeferASD (Eq. 2).
	Epsilon time.Duration
	TMax    time.Duration
	// Threshold and MaxDelay parameterize DeferUDS.
	Threshold int64
	MaxDelay  time.Duration
}

// DeferState is one path's deferment state, threaded by value through
// planning rounds: the pure-state ASD estimator plus the armed defer
// deadline for the currently pending change.
type DeferState struct {
	ASD deferpolicy.ASDState
	// Deadline is the virtual time the pending change becomes ready to
	// sync; meaningful only while Armed.
	Deadline time.Duration
	Armed    bool
}

// Input is everything a planning round may depend on.
type Input struct {
	// Now is the virtual time of this planning round. The planner never
	// consults a clock; this is the only notion of "now" it has.
	Now time.Duration
	// Baseline is the confirmed synced state (nil = empty).
	Baseline map[string]FileMeta
	// Changes are the pending local changes, at most one per path.
	Changes []Change
	// Remote is the server listing and RemoteKnown marks it as present:
	// an empty-but-known remote ("server holds nothing") plans very
	// differently from an unknown one ("trust the baseline").
	Remote      map[string]RemoteFile
	RemoteKnown bool
	// Defer is the policy knob; DeferState carries per-path estimator
	// state from the previous round (nil = fresh).
	Defer      DeferConfig
	DeferState map[string]DeferState
}

// ActionKind classifies one planned action.
type ActionKind uint8

const (
	// NoOp: nothing to transfer; may still carry a baseline correction.
	NoOp ActionKind = iota
	// Upload: full-content upload (dedup probing still applies).
	Upload
	// Delta: incremental update against the server's live version.
	Delta
	// Delete: remove the file server-side.
	Delete
	// Defer: the change is pending but its defer window is open; re-plan
	// at Until.
	Defer
)

// String names the kind.
func (k ActionKind) String() string {
	switch k {
	case NoOp:
		return "no-op"
	case Upload:
		return "upload"
	case Delta:
		return "delta"
	case Delete:
		return "delete"
	case Defer:
		return "defer"
	default:
		return fmt.Sprintf("action(%d)", uint8(k))
	}
}

// Action is one planned sync step. For non-remove actions Size/MD5
// describe the local content the action syncs (for NoOp, the content
// the baseline entry should record); Version, when nonzero, is the
// remote version the baseline should record for a NoOp. Absent marks
// actions whose success removes the baseline entry.
type Action struct {
	Kind    ActionKind
	Path    string
	Size    int64
	MD5     [16]byte
	Version uint64
	// Until is the re-plan time for Defer actions.
	Until time.Duration
	// Absent: the path no longer exists locally; applying this action
	// drops it from the baseline.
	Absent bool
	// Reason is a short human-readable justification, stable per
	// decision branch (rendered by FormatTable and syncwatch -dry-run).
	Reason string
}

// Output is a planning round's complete result.
type Output struct {
	// Now echoes the input's virtual time (used by renderers).
	Now time.Duration
	// Actions, ordered: uploads/deltas first, then deletes, then defers,
	// then no-ops; by path within each group. Uploads-before-deletes
	// mirrors the scanner's rename ordering (create before delete), so
	// a rename never leaves the remote without the content.
	Actions []Action
	// DeferState is the successor per-path deferment state; callers
	// thread it into the next round's Input verbatim.
	DeferState map[string]DeferState
	// NextWake is the earliest Defer deadline, valid when Wake is true:
	// re-planning before then cannot release any deferred change
	// (absent new writes).
	NextWake time.Duration
	Wake     bool
}

// kindOrder gives the execution-priority group for sorting.
func kindOrder(k ActionKind) int {
	switch k {
	case Upload, Delta:
		return 0
	case Delete:
		return 1
	case Defer:
		return 2
	default:
		return 3
	}
}

// advanceDefer folds one pending change's new writes into its
// deferment state under cfg and returns the successor state.
func advanceDefer(st DeferState, ch *Change, cfg DeferConfig) DeferState {
	for _, w := range ch.Writes {
		switch cfg.Mode {
		case DeferNone:
			st.Armed = false
		case DeferFixed:
			st.Deadline, st.Armed = w+cfg.FixedT, true
		case DeferASD:
			var delay time.Duration
			delay, st.ASD = deferpolicy.ASDStep(st.ASD, w, cfg.Epsilon, cfg.TMax)
			st.Deadline, st.Armed = w+delay, true
		case DeferUDS:
			if ch.Size >= cfg.Threshold {
				st.Deadline, st.Armed = w, true // ready immediately
			} else {
				st.Deadline, st.Armed = w+cfg.MaxDelay, true
			}
		default:
			panic(fmt.Sprintf("planner: unknown defer mode %v", cfg.Mode))
		}
	}
	return st
}

// Plan reconciles one round. It is a pure function: no I/O, no clock,
// no mutation of its inputs, and equal inputs yield equal plans.
//
// Contract violations — duplicate change paths, descending write
// timestamps — panic rather than degrade, because they indicate a
// broken change buffer, not a planable state.
func Plan(in Input) Output {
	out := Output{Now: in.Now, DeferState: make(map[string]DeferState)}

	changes := make(map[string]*Change, len(in.Changes))
	order := make([]string, 0, len(in.Changes))
	for i := range in.Changes {
		ch := &in.Changes[i]
		if _, dup := changes[ch.Path]; dup {
			panic(fmt.Sprintf("planner: duplicate change for %q", ch.Path))
		}
		for j := 1; j < len(ch.Writes); j++ {
			if ch.Writes[j] < ch.Writes[j-1] {
				panic(fmt.Sprintf("planner: descending write times for %q", ch.Path))
			}
		}
		changes[ch.Path] = ch
		order = append(order, ch.Path)
	}
	sort.Strings(order)

	remote := func(path string) (RemoteFile, bool) {
		if !in.RemoteKnown {
			return RemoteFile{}, false
		}
		r, ok := in.Remote[path]
		return r, ok
	}

	for _, path := range order {
		ch := changes[path]
		base, hasBase := in.Baseline[path]
		r, hasRemote := remote(path)
		liveRemote := hasRemote && !r.Deleted

		if ch.Remove {
			// Removes sync immediately; deferring a delete saves nothing.
			switch {
			case in.RemoteKnown && !liveRemote:
				out.Actions = append(out.Actions, Action{
					Kind: NoOp, Path: path, Absent: true,
					Reason: "already absent remotely",
				})
			case !in.RemoteKnown && !hasBase:
				out.Actions = append(out.Actions, Action{
					Kind: NoOp, Path: path, Absent: true,
					Reason: "never synced",
				})
			default:
				out.Actions = append(out.Actions, Action{
					Kind: Delete, Path: path, Absent: true,
					Reason: "removed locally",
				})
			}
			continue
		}

		st := advanceDefer(in.DeferState[path], ch, in.Defer)
		if st.Armed && st.Deadline > in.Now {
			out.Actions = append(out.Actions, Action{
				Kind: Defer, Path: path, Size: ch.Size, MD5: ch.MD5,
				Until: st.Deadline, Reason: "defer window open",
			})
			out.DeferState[path] = st
			if !out.Wake || st.Deadline < out.NextWake {
				out.NextWake, out.Wake = st.Deadline, true
			}
			continue
		}
		// Ready: the deadline is spent, but the ASD estimator's memory of
		// the update stream survives across syncs (Eq. 2 wants a long idle
		// gap to lengthen the next deferment, capped at TMax).
		st.Armed = false
		if st.ASD.Seen {
			out.DeferState[path] = st
		}

		action := Action{Path: path, Size: ch.Size, MD5: ch.MD5}
		var zero [16]byte
		switch {
		case liveRemote && r.MD5 != zero && r.MD5 == ch.MD5 && r.Size == ch.Size:
			action.Kind, action.Version = NoOp, r.Version
			action.Reason = "remote already matches"
		case hasBase && base.MD5 == ch.MD5 && base.Size == ch.Size && !in.RemoteKnown:
			action.Kind, action.Version = NoOp, base.Version
			action.Reason = "unchanged since baseline"
		case liveRemote:
			action.Kind = Delta
			if hasBase && base.MD5 == ch.MD5 && base.Size == ch.Size {
				action.Reason = "remote diverged; local wins"
			} else {
				action.Reason = "modified locally"
			}
		case !in.RemoteKnown && hasBase:
			action.Kind, action.Reason = Delta, "modified locally"
		default:
			action.Kind = Upload
			if hasBase {
				action.Reason = "remote missing; restore"
			} else {
				action.Reason = "new file"
			}
		}
		out.Actions = append(out.Actions, action)
	}

	// ASD estimator memory survives quiet rounds: a path with no pending
	// change keeps its inter-update estimate (disarmed — a deadline
	// without a pending change is meaningless), so the next edit's
	// deferment reflects the file's whole update history, not just the
	// burst since the last sync. Removes fall out naturally: their paths
	// are pending this round and never re-added here.
	for path, st := range in.DeferState {
		if _, pending := changes[path]; pending {
			continue
		}
		if st.ASD.Seen {
			out.DeferState[path] = DeferState{ASD: st.ASD}
		}
	}

	// Divergence repair: baseline entries with no pending local change.
	// The baseline asserts "the local file has this content" (any local
	// edit would have produced a change), so a remote that disagrees is
	// repaired from local state. Only possible with a listing in hand.
	if in.RemoteKnown {
		repair := make([]string, 0)
		for path := range in.Baseline {
			if _, pending := changes[path]; !pending {
				repair = append(repair, path)
			}
		}
		sort.Strings(repair)
		for _, path := range repair {
			base := in.Baseline[path]
			r, hasRemote := remote(path)
			var zero [16]byte
			switch {
			case !hasRemote || r.Deleted:
				out.Actions = append(out.Actions, Action{
					Kind: Upload, Path: path, Size: base.Size, MD5: base.MD5,
					Reason: "remote missing; restore",
				})
			case r.MD5 != zero && r.MD5 != base.MD5:
				out.Actions = append(out.Actions, Action{
					Kind: Delta, Path: path, Size: base.Size, MD5: base.MD5,
					Reason: "remote diverged; local wins",
				})
			case r.Version != base.Version:
				out.Actions = append(out.Actions, Action{
					Kind: NoOp, Path: path, Size: base.Size, MD5: base.MD5,
					Version: r.Version, Reason: "record remote version",
				})
			}
		}
	}

	sort.SliceStable(out.Actions, func(i, j int) bool {
		a, b := &out.Actions[i], &out.Actions[j]
		if ka, kb := kindOrder(a.Kind), kindOrder(b.Kind); ka != kb {
			return ka < kb
		}
		return a.Path < b.Path
	})
	return out
}
